package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/sampling"
	"repro/internal/server"
	"repro/pkg/client"
)

// syncBuffer is a goroutine-safe log sink: slog handlers serialize their
// own formatting but not the underlying writer.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// scrapeMetrics fetches /metrics and parses the exposition into series
// values (keyed by "name{labels}") and declared TYPEs (keyed by family
// name).
func scrapeMetrics(t *testing.T, ts *httptest.Server) (values map[string]float64, types map[string]string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /metrics: %v", err)
	}
	values = make(map[string]float64)
	types = make(map[string]string)
	for _, line := range strings.Split(string(body), "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[f[2]] = f[3]
		case strings.HasPrefix(line, "#"):
		default:
			i := strings.LastIndexByte(line, ' ')
			if i < 0 {
				t.Fatalf("malformed sample line %q", line)
			}
			v, err := strconv.ParseFloat(line[i+1:], 64)
			if err != nil {
				t.Fatalf("unparsable value in %q: %v", line, err)
			}
			if _, dup := values[line[:i]]; dup {
				t.Fatalf("duplicate series %q in exposition", line[:i])
			}
			values[line[:i]] = v
		}
	}
	return values, types
}

// TestMetricsEndToEnd drives concurrent ingest and query traffic against
// an instrumented server and checks the /metrics exposition: documented
// families present under their documented types, per-endpoint counters
// consistent with the traffic, counters monotone between two scrapes, and
// every request's X-Request-ID echoed both in the response header and in
// the structured request log.
func TestMetricsEndToEnd(t *testing.T) {
	sites := fixture(3000)
	var logBuf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	o := server.NewObserver(obs.NewRegistry(), server.WithRequestLogger(logger))
	ts := httptest.NewServer(server.New(server.NewRegistry(),
		engine.Config{Parallel: true, Shards: 2},
		server.WithObserver(o), server.WithMetricsEndpoint()))
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())
	ctx := context.Background()

	summ := core.NewSummarizer(testSalt)
	for i := 0; i < 2; i++ {
		tau := sampling.TauForExpectedSize(sites[i], 500)
		if _, err := c.PostSummary(ctx, "flows", summ.SummarizePPS(i, sites[i], tau)); err != nil {
			t.Fatal(err)
		}
	}

	// One wave of concurrent traffic: three ingest writers (distinct
	// instances) racing three query readers, under -race in CI.
	wave := func(base int) {
		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				site := sites[i%len(sites)]
				tau := sampling.TauForExpectedSize(site, 500)
				if _, err := c.Ingest(ctx, client.IngestOptions{
					Dataset: "flows", Instance: base + i, Kind: "pps", Format: "ndjson",
					Salt: testSalt, SaltSet: true, Tau: tau,
				}, bytes.NewReader(ndjsonBody(site))); err != nil {
					t.Error(err)
				}
			}(i)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 5; j++ {
					if _, err := c.MaxDominance(ctx, "flows", 0, 1); err != nil {
						t.Error(err)
					}
				}
			}()
		}
		wg.Wait()
	}

	wave(10)
	first, types := scrapeMetrics(t, ts)
	wave(20)
	second, _ := scrapeMetrics(t, ts)

	// Documented families carry their documented types.
	wantTypes := map[string]string{
		"summaryd_http_requests_total":           "counter",
		"summaryd_http_request_duration_seconds": "histogram",
		"summaryd_http_requests_in_flight":       "gauge",
		"summaryd_http_request_bytes_total":      "counter",
		"summaryd_http_response_bytes_total":     "counter",
		"summaryd_engine_pairs_total":            "counter",
		"summaryd_engine_batches_total":          "counter",
		"summaryd_engine_stalls_total":           "counter",
		"summaryd_engine_rejected_total":         "counter",
		"summaryd_engine_ingests_total":          "counter",
		"summaryd_engine_shards":                 "gauge",
		"summaryd_engine_queue_depth":            "gauge",
		"summaryd_datasets":                      "gauge",
	}
	for name, typ := range wantTypes {
		if got := types[name]; got != typ {
			t.Errorf("family %s: TYPE %q, want %q", name, got, typ)
		}
	}

	// The traffic is visible where it should be. Three ingests per wave:
	// after the first wave the 2xx ingest counter reads exactly 3.
	if got := first[`summaryd_http_requests_total{code="2xx",endpoint="/v1/ingest"}`]; got != 3 {
		t.Errorf("first scrape: ingest 2xx = %v, want 3", got)
	}
	if got := first[`summaryd_http_requests_total{code="2xx",endpoint="/v1/query"}`]; got < 15 {
		t.Errorf("first scrape: query 2xx = %v, want >= 15", got)
	}
	// Engine pairs: every wave ingests three full sites' pair streams,
	// plus nothing else touches the pipeline.
	var wavePairs float64
	for i := 0; i < 3; i++ {
		wavePairs += float64(len(sites[i%len(sites)]))
	}
	if got := first["summaryd_engine_pairs_total"]; got != wavePairs {
		t.Errorf("first scrape: engine pairs = %v, want %v", got, wavePairs)
	}
	if got := second["summaryd_engine_pairs_total"]; got != 2*wavePairs {
		t.Errorf("second scrape: engine pairs = %v, want %v", got, 2*wavePairs)
	}
	if got := first["summaryd_engine_ingests_total"]; got != 3 {
		t.Errorf("first scrape: engine ingests = %v, want 3", got)
	}
	if got := first["summaryd_engine_shards"]; got != 2 {
		t.Errorf("engine shards gauge = %v, want 2", got)
	}
	if got := first["summaryd_datasets"]; got != 1 {
		t.Errorf("datasets gauge = %v, want 1", got)
	}
	// The scrape request itself is in flight while the registry renders.
	if got := first["summaryd_http_requests_in_flight"]; got < 1 {
		t.Errorf("in-flight gauge = %v, want >= 1 (the scrape itself)", got)
	}
	// Histogram internals: the query endpoint's +Inf bucket equals its
	// _count, and the per-class counter total matches.
	qInf := first[`summaryd_http_request_duration_seconds_bucket{endpoint="/v1/query",le="+Inf"}`]
	qCount := first[`summaryd_http_request_duration_seconds_count{endpoint="/v1/query"}`]
	if qInf == 0 || qInf != qCount {
		t.Errorf("query duration histogram: +Inf bucket %v vs _count %v", qInf, qCount)
	}
	// Request/response byte counters moved on the ingest path.
	if got := first[`summaryd_http_request_bytes_total{endpoint="/v1/ingest"}`]; got == 0 {
		t.Error("ingest request bytes counter is zero after three body uploads")
	}

	// Monotonicity: no counter may move backwards between scrapes.
	for key, v1 := range first {
		base := key
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		base = strings.TrimSuffix(strings.TrimSuffix(base, "_bucket"), "_count")
		typ := types[base]
		if typ != "counter" && typ != "histogram" {
			continue
		}
		if v2, ok := second[key]; !ok || v2 < v1 {
			t.Errorf("series %s went from %v to %v (monotone counter moved backwards)", key, v1, v2)
		}
	}

	// No store is attached: its families must be absent, not zero.
	for name := range types {
		if strings.HasPrefix(name, "summaryd_store_") {
			t.Errorf("store family %s exposed by a store-less server", name)
		}
	}

	// Request-ID loop: the response header's ID appears in the structured
	// log line for that request.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	rid := resp.Header.Get("X-Request-ID")
	if rid == "" {
		t.Fatal("no X-Request-ID on /healthz response")
	}
	// The log line lands after the response is flushed; give it a moment.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if logged := findRequestLine(t, logBuf.String(), rid); logged != nil {
			if logged["path"] != "/healthz" || logged["status"] != float64(http.StatusOK) {
				t.Errorf("request line for %s = %v, want path=/healthz status=200", rid, logged)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no request log line carrying request_id %q", rid)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A sane inbound ID is honored end to end; a garbage one is replaced.
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "edge-proxy-7")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "edge-proxy-7" {
		t.Errorf("inbound request ID not honored: got %q", got)
	}
	req, _ = http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "bad id with\tcontrol")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got == "" || strings.Contains(got, " ") {
		t.Errorf("garbage inbound request ID not replaced: got %q", got)
	}
}

// findRequestLine scans JSON log output for the "request" line carrying
// the given request_id.
func findRequestLine(t *testing.T, logs, rid string) map[string]any {
	t.Helper()
	for _, line := range strings.Split(logs, "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparsable log line %q: %v", line, err)
		}
		if rec["msg"] == "request" && rec["request_id"] == rid {
			return rec
		}
	}
	return nil
}

// TestUnobservedServer pins the zero-cost default: without WithObserver
// there is no /metrics endpoint and no X-Request-ID header.
func TestUnobservedServer(t *testing.T) {
	ts := httptest.NewServer(server.New(server.NewRegistry(), engine.Config{}))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /metrics on unobserved server: status %d, want 404", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "" {
		t.Errorf("unobserved server set X-Request-ID %q", got)
	}
}

// TestMetricsEndpointRequiresObserver pins the construction contract.
func TestMetricsEndpointRequiresObserver(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithMetricsEndpoint without WithObserver did not panic")
		}
	}()
	server.New(server.NewRegistry(), engine.Config{}, server.WithMetricsEndpoint())
}

// discardRW is the cheapest possible ResponseWriter, so the allocation
// test below measures the handler, not the recorder.
type discardRW struct{ h http.Header }

func (d *discardRW) Header() http.Header         { return d.h }
func (d *discardRW) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardRW) WriteHeader(int)             {}

// healthzAllocBound is the pinned allocation budget of one /healthz probe
// on an uninstrumented server. The handler reuses the wire-version slice
// cached at construction and allocates only the response assembly and its
// JSON encoding; measured 9 allocs/op, pinned with headroom so a
// regression back to per-probe rebuilding (or an encoder pessimization)
// fails loudly without flaking on Go-version noise.
const healthzAllocBound = 20

// TestHealthzAllocs pins the per-probe allocation count of the health
// endpoint — load balancers hit it continuously, so it must not rebuild
// static state per probe.
func TestHealthzAllocs(t *testing.T) {
	s := server.New(server.NewRegistry(), engine.Config{})
	req := httptest.NewRequest("GET", "/healthz", nil)
	rw := &discardRW{h: make(http.Header)}
	avg := testing.AllocsPerRun(200, func() { s.ServeHTTP(rw, req) })
	if avg > healthzAllocBound {
		t.Errorf("/healthz allocates %.1f per probe, budget %d", avg, healthzAllocBound)
	}
}

// BenchmarkHealthz reports the probe path's time and allocations — the
// companion number to TestHealthzAllocs's hard bound.
func BenchmarkHealthz(b *testing.B) {
	s := server.New(server.NewRegistry(), engine.Config{})
	req := httptest.NewRequest("GET", "/healthz", nil)
	rw := &discardRW{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ServeHTTP(rw, req)
	}
}

// BenchmarkServerQueryInstrumented measures the same HTTP round trip as
// BenchmarkServerQuery through a fully instrumented server (observer +
// metrics + request logger at warn, so per-request Info lines are
// level-skipped as in a quiet production setup), and reports the ratio
// against an uninstrumented server measured in the same process —
// overhead-ratio lands in BENCH_server.json for the CI artifact.
func BenchmarkServerQueryInstrumented(b *testing.B) {
	sites := fixture(10000)
	summ := core.NewSummarizer(testSalt)
	ctx := context.Background()
	setup := func(opts ...server.Option) (*client.Client, func()) {
		ts := httptest.NewServer(server.New(server.NewRegistry(), engine.Config{}, opts...))
		c := client.New(ts.URL, ts.Client())
		for i := 0; i < 2; i++ {
			tau := sampling.TauForExpectedSize(sites[i], 1000)
			if _, err := c.PostSummary(ctx, "flows", summ.SummarizePPS(i, sites[i], tau)); err != nil {
				b.Fatal(err)
			}
		}
		return c, ts.Close
	}
	logger := slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelWarn}))
	o := server.NewObserver(obs.NewRegistry(),
		server.WithRequestLogger(logger), server.WithSlowRequest(time.Minute))
	inst, closeInst := setup(server.WithObserver(o), server.WithMetricsEndpoint())
	defer closeInst()
	base, closeBase := setup()
	defer closeBase()

	run := func(c *client.Client, n int) time.Duration {
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := c.MaxDominance(ctx, "flows", 0, 1); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start)
	}
	run(inst, 5) // warm both paths before timing
	run(base, 5)

	b.ResetTimer()
	instDur := run(inst, b.N)
	b.StopTimer()
	baseDur := run(base, b.N)
	if baseDur > 0 {
		b.ReportMetric(float64(instDur)/float64(baseDur), "overhead-ratio")
	}
}

// BenchmarkServerQueryTraced measures the DISABLED tracer's cost on the
// query path: the same observed server once with a constructed-but-off
// tracer and once without one, in the same process. The middleware's
// fast path is one atomic load and every span method no-ops on nil, so
// overhead-ratio must hold ≈1 (CI gates the absolute ns/op and the
// allocation count against the committed baseline — disabled tracing
// adds zero allocations, so any increase is a regression).
func BenchmarkServerQueryTraced(b *testing.B) {
	sites := fixture(10000)
	summ := core.NewSummarizer(testSalt)
	ctx := context.Background()
	setup := func(opts ...server.Option) (*client.Client, func()) {
		base := []server.Option{server.WithObserver(server.NewObserver(obs.NewRegistry()))}
		ts := httptest.NewServer(server.New(server.NewRegistry(), engine.Config{}, append(base, opts...)...))
		c := client.New(ts.URL, ts.Client())
		for i := 0; i < 2; i++ {
			tau := sampling.TauForExpectedSize(sites[i], 1000)
			if _, err := c.PostSummary(ctx, "flows", summ.SummarizePPS(i, sites[i], tau)); err != nil {
				b.Fatal(err)
			}
		}
		return c, ts.Close
	}
	tr := trace.New(0)
	tr.SetEnabled(false)
	traced, closeTraced := setup(server.WithTracer(tr))
	defer closeTraced()
	bare, closeBare := setup()
	defer closeBare()

	run := func(c *client.Client, n int) time.Duration {
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := c.MaxDominance(ctx, "flows", 0, 1); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start)
	}
	run(traced, 5) // warm both paths before timing
	run(bare, 5)

	b.ReportAllocs()
	b.ResetTimer()
	tracedDur := run(traced, b.N)
	b.StopTimer()
	bareDur := run(bare, b.N)
	if bareDur > 0 {
		b.ReportMetric(float64(tracedDur)/float64(bareDur), "overhead-ratio")
	}
	if len(tr.Traces()) != 0 {
		b.Fatal("disabled tracer recorded a trace")
	}
}
