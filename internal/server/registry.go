// Package server is the summary server: an HTTP subsystem that accepts
// independently built summaries (the internal/core JSON wire format, or
// raw pair streams summarized on arrival through the sharded
// internal/engine pipeline) and answers multi-instance queries — distinct
// counts, max-dominance norms, per-key quantiles — over any stored subset
// with the §5 partial-information estimators.
//
// This is the paper's dispersed-data story end to end (§1, §2): each data
// instance is summarized where the data lands, only the compact summaries
// travel, and any party holding a subset of them can run exact
// post-hoc estimation, because the hash salt shipped with every summary
// makes all seeds recomputable.
package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/xhash"
	"repro/pkg/api"
)

// Registry errors, distinguished so HTTP handlers can map them to status
// codes (404 vs 409).
var (
	// ErrNotFound reports a dataset or instance that is not registered.
	ErrNotFound = errors.New("server: not found")
	// ErrIncompatible reports a summary that cannot be combined with the
	// dataset it was posted to: different salt, coordination mode, or
	// summary kind.
	ErrIncompatible = errors.New("server: incompatible summary")
)

// Registry is the in-memory summary store, keyed by dataset name and
// instance index. All summaries of one dataset share a randomization
// (salt + coordination mode) and a kind; the first summary posted fixes
// them, and later posts must match — the compatibility invariant that
// makes every stored subset combinable exactly.
//
// Registered summaries are treated as immutable: Put replaces whole
// entries (last write per (dataset, instance) wins) and queries only read,
// so readers never observe partial state.
type Registry struct {
	mu        sync.RWMutex
	datasets  map[string]*datasetEntry
	persister Persister
}

// Persister hooks registry mutations to durable storage (internal/store
// implements it). Put calls Append under the registry's write lock for
// every accepted summary, so the log's record order is exactly the order
// registrations took effect; when Append reports a snapshot is due, Put
// immediately passes the persister a dump of the registry taken under
// that same lock — a consistent cut containing precisely the appended
// records.
type Persister interface {
	// Append durably records one accepted registration. An error fails
	// (and rolls back) the registration: the registry never acknowledges
	// state the log did not accept.
	Append(dataset string, s core.Summary) (snapshotDue bool, err error)
	// Snapshot durably writes the full image dump yields and supersedes
	// the log written so far. Callers other than the registry must route
	// through Registry.Snapshot: it establishes the one legal lock order
	// (registry lock, then the persister's own). Calling the persister
	// directly with Registry.Dump as the source inverts that order
	// against a concurrent Put and can deadlock.
	Snapshot(dump func(emit func(dataset string, s core.Summary) error) error) error
}

type datasetEntry struct {
	kind       string
	seeder     xhash.Seeder
	byInstance map[int]core.Summary
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{datasets: make(map[string]*datasetEntry)}
}

// SetPersister attaches durable storage to the registry: every later
// successful Put appends to it. Attach after recovery has replayed the
// store's existing state through Put — replay with a persister attached
// would re-append every record it reads.
func (r *Registry) SetPersister(p Persister) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.persister = p
}

// Put registers a summary under the named dataset, creating the dataset on
// first use. It returns ErrIncompatible (wrapped with the specific
// mismatch) when the summary's salt, coordination mode, or kind differ
// from the dataset's. Re-posting an instance replaces its summary.
func (r *Registry) Put(dataset string, s core.Summary) error {
	if dataset == "" {
		return fmt.Errorf("server: empty dataset name")
	}
	if len(dataset) > api.MaxDatasetName {
		// Enforced here, not only in the store, so the accepted-name set
		// does not depend on whether durability is configured — and so a
		// registry populated without a persister can never hold a name a
		// later SetPersister + Snapshot would choke on. The store checks
		// again at write time as a backstop (its replay validator
		// hard-fails on longer names).
		return fmt.Errorf("server: dataset name is %d bytes (max %d)", len(dataset), api.MaxDatasetName)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.datasets[dataset]
	created := !ok
	if created {
		e = &datasetEntry{
			kind:       s.Kind(),
			seeder:     core.SummarySeeder(s),
			byInstance: make(map[int]core.Summary),
		}
		r.datasets[dataset] = e
	}
	if s.Kind() != e.kind {
		return fmt.Errorf("%w: dataset %q holds %s summaries, got %s",
			ErrIncompatible, dataset, e.kind, s.Kind())
	}
	if sd := core.SummarySeeder(s); sd != e.seeder {
		return fmt.Errorf("%w: dataset %q uses salt %d (shared=%v), got salt %d (shared=%v)",
			ErrIncompatible, dataset, e.seeder.Salt, e.seeder.Shared, sd.Salt, sd.Shared)
	}
	id := s.InstanceID()
	prev, hadPrev := e.byInstance[id]
	e.byInstance[id] = s
	if r.persister != nil {
		due, err := r.persister.Append(dataset, s)
		if err != nil {
			// Roll back: the registry must never answer queries from state
			// the log refused — a restart would silently forget it.
			if hadPrev {
				e.byInstance[id] = prev
			} else {
				delete(e.byInstance, id)
				if created {
					delete(r.datasets, dataset)
				}
			}
			return fmt.Errorf("server: persisting summary for dataset %q: %w", dataset, err)
		}
		if due {
			// Snapshot under the lock already held: the dump is a consistent
			// cut matching the WAL position exactly. A snapshot failure is
			// deliberately not a Put failure — the record above IS durable in
			// the WAL; the store surfaces the error in its status and backs
			// off a full interval before the next automatic attempt.
			_ = r.persister.Snapshot(r.dumpLocked)
		}
	}
	return nil
}

// Snapshot writes the registry's full image through the attached
// persister (a no-op without one). It is the one safe entry point for
// explicit snapshots — summaryd's shutdown path, a future admin trigger
// — because it takes the registry lock BEFORE the persister's, the same
// order Put establishes; calling the persister directly with Dump as
// the source would take the locks in the opposite order and deadlock
// against a concurrent Put.
func (r *Registry) Snapshot() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.persister == nil {
		return nil
	}
	return r.persister.Snapshot(r.dumpLocked)
}

// Dump iterates every stored (dataset, summary) in deterministic order —
// datasets by name, instances ascending — under the read lock. For
// snapshotting a persister-backed registry use Snapshot, not Dump (see
// the lock-order note there).
func (r *Registry) Dump(emit func(dataset string, s core.Summary) error) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.dumpLocked(emit)
}

// dumpLocked is Dump without locking, for callers already holding mu.
func (r *Registry) dumpLocked(emit func(dataset string, s core.Summary) error) error {
	names := make([]string, 0, len(r.datasets))
	for name := range r.datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := r.datasets[name]
		ids := make([]int, 0, len(e.byInstance))
		for id := range e.byInstance {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if err := emit(name, e.byInstance[id]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Get returns the summaries of the requested instances, in the order
// given. A nil or empty instance list selects every stored instance in
// ascending order.
func (r *Registry) Get(dataset string, instances []int) ([]core.Summary, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.datasets[dataset]
	if !ok {
		return nil, fmt.Errorf("%w: dataset %q", ErrNotFound, dataset)
	}
	if len(instances) == 0 {
		instances = make([]int, 0, len(e.byInstance))
		for i := range e.byInstance {
			instances = append(instances, i)
		}
		sort.Ints(instances)
	}
	out := make([]core.Summary, len(instances))
	for j, i := range instances {
		s, ok := e.byInstance[i]
		if !ok {
			return nil, fmt.Errorf("%w: dataset %q has no instance %d", ErrNotFound, dataset, i)
		}
		out[j] = s
	}
	return out, nil
}

// Info describes one dataset. Ingest uses it to bind new raw streams to
// the dataset's existing salt, coordination mode, and kind before reading
// the request body.
func (r *Registry) Info(dataset string) (DatasetInfo, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.datasets[dataset]
	if !ok {
		return DatasetInfo{}, fmt.Errorf("%w: dataset %q", ErrNotFound, dataset)
	}
	return e.info(dataset), nil
}

// Count returns the number of registered datasets — the cheap health-probe
// read (List materializes per-dataset info; probes only need the count).
func (r *Registry) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.datasets)
}

// List describes every dataset, sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]DatasetInfo, 0, len(r.datasets))
	for name, e := range r.datasets {
		out = append(out, e.info(name))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dataset < out[j].Dataset })
	return out
}

func (e *datasetEntry) info(name string) DatasetInfo {
	info := DatasetInfo{
		Dataset:   name,
		Kind:      e.kind,
		Salt:      e.seeder.Salt,
		Shared:    e.seeder.Shared,
		Instances: make([]int, 0, len(e.byInstance)),
	}
	for i, s := range e.byInstance {
		info.Instances = append(info.Instances, i)
		info.Keys += s.Size()
	}
	sort.Ints(info.Instances)
	return info
}
