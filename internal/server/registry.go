// Package server is the summary server: an HTTP subsystem that accepts
// independently built summaries (the internal/core JSON wire format, or
// raw pair streams summarized on arrival through the sharded
// internal/engine pipeline) and answers multi-instance queries — distinct
// counts, max-dominance norms, per-key quantiles — over any stored subset
// with the §5 partial-information estimators.
//
// This is the paper's dispersed-data story end to end (§1, §2): each data
// instance is summarized where the data lands, only the compact summaries
// travel, and any party holding a subset of them can run exact
// post-hoc estimation, because the hash salt shipped with every summary
// makes all seeds recomputable.
package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/xhash"
)

// Registry errors, distinguished so HTTP handlers can map them to status
// codes (404 vs 409).
var (
	// ErrNotFound reports a dataset or instance that is not registered.
	ErrNotFound = errors.New("server: not found")
	// ErrIncompatible reports a summary that cannot be combined with the
	// dataset it was posted to: different salt, coordination mode, or
	// summary kind.
	ErrIncompatible = errors.New("server: incompatible summary")
)

// Registry is the in-memory summary store, keyed by dataset name and
// instance index. All summaries of one dataset share a randomization
// (salt + coordination mode) and a kind; the first summary posted fixes
// them, and later posts must match — the compatibility invariant that
// makes every stored subset combinable exactly.
//
// Registered summaries are treated as immutable: Put replaces whole
// entries (last write per (dataset, instance) wins) and queries only read,
// so readers never observe partial state.
type Registry struct {
	mu       sync.RWMutex
	datasets map[string]*datasetEntry
}

type datasetEntry struct {
	kind       string
	seeder     xhash.Seeder
	byInstance map[int]core.Summary
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{datasets: make(map[string]*datasetEntry)}
}

// Put registers a summary under the named dataset, creating the dataset on
// first use. It returns ErrIncompatible (wrapped with the specific
// mismatch) when the summary's salt, coordination mode, or kind differ
// from the dataset's. Re-posting an instance replaces its summary.
func (r *Registry) Put(dataset string, s core.Summary) error {
	if dataset == "" {
		return fmt.Errorf("server: empty dataset name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.datasets[dataset]
	if !ok {
		e = &datasetEntry{
			kind:       s.Kind(),
			seeder:     core.SummarySeeder(s),
			byInstance: make(map[int]core.Summary),
		}
		r.datasets[dataset] = e
	}
	if s.Kind() != e.kind {
		return fmt.Errorf("%w: dataset %q holds %s summaries, got %s",
			ErrIncompatible, dataset, e.kind, s.Kind())
	}
	if sd := core.SummarySeeder(s); sd != e.seeder {
		return fmt.Errorf("%w: dataset %q uses salt %d (shared=%v), got salt %d (shared=%v)",
			ErrIncompatible, dataset, e.seeder.Salt, e.seeder.Shared, sd.Salt, sd.Shared)
	}
	e.byInstance[s.InstanceID()] = s
	return nil
}

// Get returns the summaries of the requested instances, in the order
// given. A nil or empty instance list selects every stored instance in
// ascending order.
func (r *Registry) Get(dataset string, instances []int) ([]core.Summary, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.datasets[dataset]
	if !ok {
		return nil, fmt.Errorf("%w: dataset %q", ErrNotFound, dataset)
	}
	if len(instances) == 0 {
		instances = make([]int, 0, len(e.byInstance))
		for i := range e.byInstance {
			instances = append(instances, i)
		}
		sort.Ints(instances)
	}
	out := make([]core.Summary, len(instances))
	for j, i := range instances {
		s, ok := e.byInstance[i]
		if !ok {
			return nil, fmt.Errorf("%w: dataset %q has no instance %d", ErrNotFound, dataset, i)
		}
		out[j] = s
	}
	return out, nil
}

// Info describes one dataset. Ingest uses it to bind new raw streams to
// the dataset's existing salt, coordination mode, and kind before reading
// the request body.
func (r *Registry) Info(dataset string) (DatasetInfo, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.datasets[dataset]
	if !ok {
		return DatasetInfo{}, fmt.Errorf("%w: dataset %q", ErrNotFound, dataset)
	}
	return e.info(dataset), nil
}

// Count returns the number of registered datasets — the cheap health-probe
// read (List materializes per-dataset info; probes only need the count).
func (r *Registry) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.datasets)
}

// List describes every dataset, sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]DatasetInfo, 0, len(r.datasets))
	for name, e := range r.datasets {
		out = append(out, e.info(name))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dataset < out[j].Dataset })
	return out
}

func (e *datasetEntry) info(name string) DatasetInfo {
	info := DatasetInfo{
		Dataset:   name,
		Kind:      e.kind,
		Salt:      e.seeder.Salt,
		Shared:    e.seeder.Shared,
		Instances: make([]int, 0, len(e.byInstance)),
	}
	for i, s := range e.byInstance {
		info.Instances = append(info.Instances, i)
		info.Keys += s.Size()
	}
	sort.Ints(info.Instances)
	return info
}
