// Package server is the summary server: an HTTP subsystem that accepts
// independently built summaries (the internal/core JSON wire format, or
// raw pair streams summarized on arrival through the sharded
// internal/engine pipeline) and answers multi-instance queries — distinct
// counts, max-dominance norms, per-key quantiles — over any stored subset
// with the §5 partial-information estimators.
//
// This is the paper's dispersed-data story end to end (§1, §2): each data
// instance is summarized where the data lands, only the compact summaries
// travel, and any party holding a subset of them can run exact
// post-hoc estimation, because the hash salt shipped with every summary
// makes all seeds recomputable.
package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs/trace"
	"repro/internal/xhash"
	"repro/pkg/api"
)

// Registry errors, distinguished so HTTP handlers can map them to status
// codes (404 vs 409).
var (
	// ErrNotFound reports a dataset or instance that is not registered.
	ErrNotFound = errors.New("server: not found")
	// ErrIncompatible reports a summary that cannot be combined with the
	// dataset it was posted to: different salt, coordination mode, or
	// summary kind.
	ErrIncompatible = errors.New("server: incompatible summary")
)

// Registry is the in-memory summary store, keyed by dataset name and
// instance index. All summaries of one dataset share a randomization
// (salt + coordination mode) and a kind; the first summary posted fixes
// them, and later posts must match — the compatibility invariant that
// makes every stored subset combinable exactly.
//
// Registered summaries are treated as immutable: Put replaces whole
// entries (last write per (dataset, instance) wins) and queries only read,
// so readers never observe partial state.
type Registry struct {
	mu        sync.RWMutex
	datasets  map[string]*datasetEntry
	persister Persister

	// Dirty tracking for incremental snapshots. epoch numbers snapshot
	// cuts: each DumpCut takes the current epoch and increments it, and a
	// successful Put stamps its dataset with the current epoch. A dataset
	// is dirty — must appear in the next cut — iff its stamp is at or
	// above cleanEpoch, which advances to cut+1 only when the snapshot of
	// cut commits successfully: a failed snapshot leaves every stamp
	// dirty, so the next cut re-covers it. cleanEpoch is atomic (not under
	// mu) so a snapshot's commit callback can run anywhere: inline under
	// the registry lock (a synchronous persister) or on a background
	// worker (internal/store), without deadlock either way.
	epoch      int64
	cleanEpoch atomic.Int64
}

// Persister hooks registry mutations to durable storage (internal/store
// implements it). Put calls Append under the registry's write lock for
// every accepted summary, so the log's record order is exactly the order
// registrations took effect; when Append reports a snapshot is due, Put
// immediately hands the persister a consistent cut taken under that same
// lock — the persister may write it on a background goroutine while
// registrations continue.
type Persister interface {
	// Append durably records one accepted registration. An error fails
	// (and rolls back) the registration: the registry never acknowledges
	// state the log did not accept.
	Append(dataset string, s core.Summary) (snapshotDue bool, err error)
	// Snapshot accepts a consistent cut for durable persistence. dump
	// iterates state captured at the cut and stays valid after the
	// registry lock is released; the persister may run it later, on
	// another goroutine. commit(ok) must be called exactly once, when the
	// snapshot durably completes (ok) or is abandoned (!ok) — it is safe
	// to call from anywhere, including synchronously from inside Snapshot
	// (the registry's commit uses only atomics). With syncWait, the
	// returned wait blocks until the job finishes; the caller must invoke
	// it AFTER releasing the registry lock (Registry.Snapshot does), or a
	// background commit could never complete. Callers other than the
	// registry must route through Registry.Snapshot: it establishes the
	// one legal lock order (registry lock, then the persister's own).
	Snapshot(dump func(emit func(dataset string, s core.Summary) error) error, commit func(ok bool), syncWait bool) (wait func() error, err error)
}

// TracedPersister is the optional tracing extension of Persister
// (internal/store implements it). When the registry's caller carries a
// request span, Append and Snapshot receive it so the store can hang its
// own spans (WAL append, fsync, rotation) under the request and stamp
// background snapshots with the trace that cut them. Persisters without
// the extension — test fakes, simple implementations — keep working
// through the plain interface.
type TracedPersister interface {
	Persister
	// AppendTraced is Append with the registering request's span (nil
	// when the registration is untraced).
	AppendTraced(parent *trace.Span, dataset string, s core.Summary) (snapshotDue bool, err error)
	// SnapshotTraced is Snapshot with the span of the operation that cut
	// it (nil for untraced or scheduled cuts): the snapshot outlives the
	// request, so the store records it as its own trace carrying the
	// trigger's trace ID rather than as a child span.
	SnapshotTraced(trigger *trace.Span, dump func(emit func(dataset string, s core.Summary) error) error, commit func(ok bool), syncWait bool) (wait func() error, err error)
}

type datasetEntry struct {
	kind       string
	seeder     xhash.Seeder
	byInstance map[int]core.Summary
	// dirtyEpoch is the registry epoch of the last accepted registration;
	// the dataset is dirty iff dirtyEpoch >= Registry.cleanEpoch.
	dirtyEpoch int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{datasets: make(map[string]*datasetEntry)}
}

// SetPersister attaches durable storage to the registry: every later
// successful Put appends to it. Attach after recovery has replayed the
// store's existing state through Put — replay with a persister attached
// would re-append every record it reads.
func (r *Registry) SetPersister(p Persister) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.persister = p
}

// Put registers a summary under the named dataset, creating the dataset on
// first use. It returns ErrIncompatible (wrapped with the specific
// mismatch) when the summary's salt, coordination mode, or kind differ
// from the dataset's. Re-posting an instance replaces its summary.
func (r *Registry) Put(dataset string, s core.Summary) error {
	return r.PutCtx(context.Background(), dataset, s)
}

// PutCtx is Put carrying the caller's context: a request span in the
// context threads through to a TracedPersister, so the durable append
// (and any snapshot it triggers) shows up under the request's trace.
func (r *Registry) PutCtx(ctx context.Context, dataset string, s core.Summary) error {
	sp := trace.SpanFromContext(ctx)
	if dataset == "" {
		return fmt.Errorf("server: empty dataset name")
	}
	if len(dataset) > api.MaxDatasetName {
		// Enforced here, not only in the store, so the accepted-name set
		// does not depend on whether durability is configured — and so a
		// registry populated without a persister can never hold a name a
		// later SetPersister + Snapshot would choke on. The store checks
		// again at write time as a backstop (its replay validator
		// hard-fails on longer names).
		return fmt.Errorf("server: dataset name is %d bytes (max %d)", len(dataset), api.MaxDatasetName)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.datasets[dataset]
	created := !ok
	if created {
		e = &datasetEntry{
			kind:       s.Kind(),
			seeder:     core.SummarySeeder(s),
			byInstance: make(map[int]core.Summary),
		}
		r.datasets[dataset] = e
	}
	if s.Kind() != e.kind {
		return fmt.Errorf("%w: dataset %q holds %s summaries, got %s",
			ErrIncompatible, dataset, e.kind, s.Kind())
	}
	if sd := core.SummarySeeder(s); sd != e.seeder {
		return fmt.Errorf("%w: dataset %q uses salt %d (shared=%v), got salt %d (shared=%v)",
			ErrIncompatible, dataset, e.seeder.Salt, e.seeder.Shared, sd.Salt, sd.Shared)
	}
	id := s.InstanceID()
	prev, hadPrev := e.byInstance[id]
	e.byInstance[id] = s
	if r.persister != nil {
		due, err := r.appendPersister(sp, dataset, s)
		if err != nil {
			// Roll back: the registry must never answer queries from state
			// the log refused — a restart would silently forget it.
			if hadPrev {
				e.byInstance[id] = prev
			} else {
				delete(e.byInstance, id)
				if created {
					delete(r.datasets, dataset)
				}
			}
			return fmt.Errorf("server: persisting summary for dataset %q: %w", dataset, err)
		}
		e.dirtyEpoch = r.epoch
		if due {
			// Cut under the lock already held: the cut is consistent with
			// the WAL position exactly, and because every cut is enqueued
			// under this lock, the persister sees cuts in order. The write
			// itself happens on the persister's background worker — Put
			// does not wait. A snapshot failure is deliberately not a Put
			// failure: the record above IS durable in the WAL; the store
			// surfaces the error in its status and backs off a full
			// interval before the next automatic attempt.
			dump, commit := r.dumpCutLocked()
			if tp, ok := r.persister.(TracedPersister); ok {
				_, _ = tp.SnapshotTraced(sp, dump, commit, false)
			} else {
				_, _ = r.persister.Snapshot(dump, commit, false)
			}
		}
	} else {
		e.dirtyEpoch = r.epoch
	}
	return nil
}

// appendPersister routes one accepted registration to the persister,
// through the traced entry point when both a span and a TracedPersister
// are present.
func (r *Registry) appendPersister(sp *trace.Span, dataset string, s core.Summary) (bool, error) {
	if tp, ok := r.persister.(TracedPersister); ok {
		return tp.AppendTraced(sp, dataset, s)
	}
	return r.persister.Append(dataset, s)
}

// Snapshot takes an incremental cut of the registry and writes it
// through the attached persister (a no-op without one), waiting for the
// write to complete. It is the one safe entry point for explicit
// snapshots — summaryd's shutdown path, a future admin trigger — because
// it takes the registry lock BEFORE the persister's, the same order Put
// establishes, and releases it before waiting, so the persister's
// background commit can re-enter the registry.
func (r *Registry) Snapshot() error {
	r.mu.Lock()
	if r.persister == nil {
		r.mu.Unlock()
		return nil
	}
	dump, commit := r.dumpCutLocked()
	wait, err := r.persister.Snapshot(dump, commit, true)
	r.mu.Unlock()
	if err != nil {
		return err
	}
	if wait != nil {
		return wait()
	}
	return nil
}

// DumpCut takes a consistent incremental cut: a dump over exactly the
// datasets dirty since the last committed snapshot, plus the commit
// callback that marks them clean. The cut is captured under a brief
// write lock — registered summaries are immutable, so capturing
// references is enough — and the returned dump runs lock-free, which is
// what lets a persister write it in the background while registrations
// continue.
func (r *Registry) DumpCut() (dump func(emit func(dataset string, s core.Summary) error) error, commit func(ok bool)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dumpCutLocked()
}

// dumpCutLocked is DumpCut for callers already holding the write lock.
func (r *Registry) dumpCutLocked() (dump func(emit func(dataset string, s core.Summary) error) error, commit func(ok bool)) {
	cutEpoch := r.epoch
	r.epoch++
	clean := r.cleanEpoch.Load()
	type cutEntry struct {
		dataset string
		s       core.Summary
	}
	var cut []cutEntry
	names := make([]string, 0, len(r.datasets))
	for name, e := range r.datasets {
		if e.dirtyEpoch >= clean {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		e := r.datasets[name]
		ids := make([]int, 0, len(e.byInstance))
		for id := range e.byInstance {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			cut = append(cut, cutEntry{dataset: name, s: e.byInstance[id]})
		}
	}
	dump = func(emit func(dataset string, s core.Summary) error) error {
		for _, en := range cut {
			if err := emit(en.dataset, en.s); err != nil {
				return err
			}
		}
		return nil
	}
	var once sync.Once
	commit = func(ok bool) {
		once.Do(func() {
			if !ok {
				// Leave every stamp dirty: the next cut re-covers this one.
				return
			}
			// Registrations accepted since the cut carry epoch >= cutEpoch+1,
			// so they stay dirty; everything the cut captured becomes clean.
			// Monotone max — a late-arriving older commit never regresses a
			// newer one (the store's FIFO worker already guarantees order;
			// this keeps the registry safe against any persister).
			for {
				cur := r.cleanEpoch.Load()
				if cur >= cutEpoch+1 || r.cleanEpoch.CompareAndSwap(cur, cutEpoch+1) {
					return
				}
			}
		})
	}
	return dump, commit
}

// MarkClean resets dirty tracking after recovery: every dataset becomes
// clean except those named — for a store-backed registry, the datasets
// with records still in the WAL (store.WALDatasets), which the snapshot
// chain does not fully cover. Without this, the first incremental
// snapshot after a restart would be a full one: recovery replays through
// Put, which marks everything dirty.
func (r *Registry) MarkClean(stillDirty []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	clean := r.cleanEpoch.Load()
	for _, e := range r.datasets {
		e.dirtyEpoch = clean - 1
	}
	for _, name := range stillDirty {
		if e, ok := r.datasets[name]; ok {
			e.dirtyEpoch = clean
		}
	}
}

// Dump iterates every stored (dataset, summary) in deterministic order —
// datasets by name, instances ascending — under the read lock. For
// snapshotting a persister-backed registry use Snapshot, not Dump (see
// the lock-order note there).
func (r *Registry) Dump(emit func(dataset string, s core.Summary) error) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.dumpLocked(emit)
}

// dumpLocked is Dump without locking, for callers already holding mu.
func (r *Registry) dumpLocked(emit func(dataset string, s core.Summary) error) error {
	names := make([]string, 0, len(r.datasets))
	for name := range r.datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := r.datasets[name]
		ids := make([]int, 0, len(e.byInstance))
		for id := range e.byInstance {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if err := emit(name, e.byInstance[id]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Get returns the summaries of the requested instances, in the order
// given. A nil or empty instance list selects every stored instance in
// ascending order.
func (r *Registry) Get(dataset string, instances []int) ([]core.Summary, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.datasets[dataset]
	if !ok {
		return nil, fmt.Errorf("%w: dataset %q", ErrNotFound, dataset)
	}
	if len(instances) == 0 {
		instances = make([]int, 0, len(e.byInstance))
		for i := range e.byInstance {
			instances = append(instances, i)
		}
		sort.Ints(instances)
	}
	out := make([]core.Summary, len(instances))
	for j, i := range instances {
		s, ok := e.byInstance[i]
		if !ok {
			return nil, fmt.Errorf("%w: dataset %q has no instance %d", ErrNotFound, dataset, i)
		}
		out[j] = s
	}
	return out, nil
}

// Info describes one dataset. Ingest uses it to bind new raw streams to
// the dataset's existing salt, coordination mode, and kind before reading
// the request body.
func (r *Registry) Info(dataset string) (DatasetInfo, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.datasets[dataset]
	if !ok {
		return DatasetInfo{}, fmt.Errorf("%w: dataset %q", ErrNotFound, dataset)
	}
	return e.info(dataset), nil
}

// Count returns the number of registered datasets — the cheap health-probe
// read (List materializes per-dataset info; probes only need the count).
func (r *Registry) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.datasets)
}

// List describes every dataset, sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]DatasetInfo, 0, len(r.datasets))
	for name, e := range r.datasets {
		out = append(out, e.info(name))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dataset < out[j].Dataset })
	return out
}

func (e *datasetEntry) info(name string) DatasetInfo {
	info := DatasetInfo{
		Dataset:   name,
		Kind:      e.kind,
		Salt:      e.seeder.Salt,
		Shared:    e.seeder.Shared,
		Instances: make([]int, 0, len(e.byInstance)),
	}
	for i, s := range e.byInstance {
		info.Instances = append(info.Instances, i)
		info.Keys += s.Size()
	}
	sort.Ints(info.Instances)
	return info
}
