package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The loader is a go/packages stand-in built from what the toolchain
// already ships: `go list -deps -export -json` locates every package and
// produces gc export data for the dependencies, target packages are
// parsed from source and type-checked with go/types, and a single
// importer chains the two worlds — source-checked packages are preferred
// (and memoized) so cross-package type identities hold, everything else
// resolves through export data.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns (e.g. "./...") in
// module directory dir and returns them as a Program. Test files are not
// loaded: the analyzers police production code, and testdata trees are
// excluded by `go list` already.
func Load(dir string, patterns ...string) (*Program, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,Standard,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	l := newLoader()
	var targets []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if p.DepOnly {
			if p.Export == "" && p.ImportPath != "unsafe" {
				return nil, fmt.Errorf("%s: no export data (build failed?)", p.ImportPath)
			}
			l.exports[p.ImportPath] = p.Export
			continue
		}
		if len(p.GoFiles) == 0 {
			continue // test-only package (e.g. the module root): nothing to analyze
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		l.src[p.ImportPath] = files
		targets = append(targets, p.ImportPath)
	}
	return l.check(targets)
}

// LoadTestdata type-checks golden packages under a testdata/src root for
// the analyzer unit tests. Packages import each other by their path
// relative to srcRoot; stdlib imports resolve through export data
// produced on the fly.
func LoadTestdata(srcRoot string, paths ...string) (*Program, error) {
	l := newLoader()
	stdlib := make(map[string]bool)
	err := filepath.Walk(srcRoot, func(p string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		dir := filepath.Dir(p)
		rel, err := filepath.Rel(srcRoot, dir)
		if err != nil {
			return err
		}
		imp := filepath.ToSlash(rel)
		l.src[imp] = append(l.src[imp], p)
		// Pre-scan imports so one `go list` run can cover the stdlib.
		f, err := parser.ParseFile(token.NewFileSet(), p, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, spec := range f.Imports {
			ip, _ := strconv.Unquote(spec.Path.Value)
			stdlib[ip] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, f := range l.src {
		sort.Strings(f)
	}
	// Local (testdata-relative) imports resolve from source; drop them
	// from the stdlib list.
	var std []string
	for ip := range stdlib {
		if _, local := l.src[ip]; !local && ip != "unsafe" {
			std = append(std, ip)
		}
	}
	sort.Strings(std)
	if len(std) > 0 {
		exp, err := stdlibExports(srcRoot, std)
		if err != nil {
			return nil, err
		}
		l.exports = exp
	}
	return l.check(paths)
}

// stdlibExports resolves export-data files for pkgs and their transitive
// dependencies.
func stdlibExports(dir string, pkgs []string) (map[string]string, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(pkgs, " "), err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// loader chains source type-checking (targets) with gc export data
// (dependencies) behind one types.Importer.
type loader struct {
	fset    *token.FileSet
	src     map[string][]string // import path -> source files
	exports map[string]string   // import path -> export data file
	pkgs    map[string]*Package // memoized source-checked packages
	loading map[string]bool     // cycle guard
	gc      types.Importer
	errs    []string
}

func newLoader() *loader {
	l := &loader{
		fset:    token.NewFileSet(),
		src:     make(map[string][]string),
		exports: make(map[string]string),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.gc = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return l
}

// Import implements types.Importer: source packages win, then export
// data. This is what the type-checker calls for every import statement.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if _, ok := l.src[path]; ok {
		p, err := l.checkSource(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.gc.Import(path)
}

// checkSource parses and type-checks one source package.
func (l *loader) checkSource(path string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	var files []*ast.File
	for _, fname := range l.src[path] {
		f, err := parser.ParseFile(l.fset, fname, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no Go files", path)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			l.errs = append(l.errs, err.Error())
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil && len(l.errs) == 0 {
		l.errs = append(l.errs, err.Error())
	}
	p := &Package{
		Path:  path,
		Name:  files[0].Name.Name,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = p
	return p, nil
}

// check loads every target and assembles the Program, failing on any
// accumulated type error (an analyzer over ill-typed code lies).
func (l *loader) check(targets []string) (*Program, error) {
	prog := &Program{Fset: l.fset}
	for _, path := range targets {
		p, ok := l.pkgs[path]
		if !ok {
			var err error
			p, err = l.checkSource(path)
			if err != nil {
				return nil, err
			}
		}
		prog.Pkgs = append(prog.Pkgs, p)
	}
	if len(l.errs) > 0 {
		n := len(l.errs)
		if n > 10 {
			l.errs = l.errs[:10]
		}
		return nil, fmt.Errorf("type errors (%d):\n  %s", n, strings.Join(l.errs, "\n  "))
	}
	return prog, nil
}
