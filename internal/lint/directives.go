package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The three directive comments the suite understands. Directives use the
// go:directive spelling (no space after //) so gofmt leaves them alone.
const (
	dirIgnore  = "//summarylint:ignore"
	dirHot     = "//summarylint:hot"
	dirNilsafe = "//summarylint:nilsafe"
)

// ignoreSet indexes every `//summarylint:ignore` directive by file and
// line. A directive suppresses diagnostics on its own line and on the
// line directly below it (so it can ride at end-of-line or on its own
// line above the flagged statement).
type ignoreSet struct {
	fset *token.FileSet
	// byLine maps file -> directive line -> reason ("" = missing).
	byLine map[string]map[int]string
	// pos remembers each directive's position for missing-reason reports.
	pos map[string]map[int]token.Pos
}

func collectIgnores(prog *Program) *ignoreSet {
	s := &ignoreSet{
		fset:   prog.Fset,
		byLine: make(map[string]map[int]string),
		pos:    make(map[string]map[int]token.Pos),
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					reason, ok := parseIgnore(c.Text)
					if !ok {
						continue
					}
					p := prog.Fset.Position(c.Pos())
					if s.byLine[p.Filename] == nil {
						s.byLine[p.Filename] = make(map[int]string)
						s.pos[p.Filename] = make(map[int]token.Pos)
					}
					s.byLine[p.Filename][p.Line] = reason
					s.pos[p.Filename][p.Line] = c.Pos()
				}
			}
		}
	}
	return s
}

// parseIgnore returns (reason, true) when text is an ignore directive.
// The reason is everything after the directive word, trimmed; empty
// means the mandatory reason is missing.
func parseIgnore(text string) (string, bool) {
	if !strings.HasPrefix(text, dirIgnore) {
		return "", false
	}
	rest := text[len(dirIgnore):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. //summarylint:ignoreXYZ — not ours
	}
	return strings.TrimSpace(rest), true
}

// suppresses reports whether a reasoned ignore directive covers
// file:line (directive on the same line or the line above).
func (s *ignoreSet) suppresses(file string, line int) bool {
	lines := s.byLine[file]
	if lines == nil {
		return false
	}
	if r, ok := lines[line]; ok && r != "" {
		return true
	}
	if r, ok := lines[line-1]; ok && r != "" {
		return true
	}
	return false
}

// missingReasons returns one diagnostic per reason-less ignore directive.
func (s *ignoreSet) missingReasons() []Diagnostic {
	var out []Diagnostic
	for file, lines := range s.byLine {
		for line, reason := range lines {
			if reason != "" {
				continue
			}
			out = append(out, diag(s.fset, "directive", s.pos[file][line],
				"summarylint:ignore requires a reason: //summarylint:ignore <why this is safe>"))
		}
	}
	return out
}

// hasDirective reports whether a comment group carries the given
// directive as a standalone comment line.
func hasDirective(doc *ast.CommentGroup, dir string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == dir || strings.HasPrefix(c.Text, dir+" ") {
			return true
		}
	}
	return false
}

// isHot reports whether fd is annotated `//summarylint:hot`.
func isHot(fd *ast.FuncDecl) bool {
	return hasDirective(fd.Doc, dirHot)
}

// nilsafeTypes collects the names of types in file annotated
// `//summarylint:nilsafe` (directive on the TypeSpec or its GenDecl).
func nilsafeTypes(f *ast.File) map[string]bool {
	out := make(map[string]bool)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		declMarked := hasDirective(gd.Doc, dirNilsafe)
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			if declMarked || hasDirective(ts.Doc, dirNilsafe) || hasDirective(ts.Comment, dirNilsafe) {
				out[ts.Name.Name] = true
			}
		}
	}
	return out
}
