package lint

// Deterministic packages: everything whose output feeds wire encodings,
// coordinated samples, or golden experiment tables. Map iteration order
// must never be observable here.
var deterministicPackages = []string{
	"internal/core",
	"internal/aggregate",
	"internal/sampling",
	"internal/store",
}

// Float-accumulation scope: the deterministic set plus the estimator
// package (pure formulas today, but any future loop there sums floats).
var floatSumPackages = append(append([]string{}, deterministicPackages...),
	"internal/estimator",
)

// DefaultAnalyzers is the suite cmd/summarylint runs, configured for
// this repo's packages and lock hierarchy.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		MapOrder{Packages: deterministicPackages},
		FloatSum{Packages: floatSumPackages},
		DefaultLockOrder(),
		HotAlloc{},
		NilGuard{},
	}
}
