package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden tests load fixture packages from testdata/src (excluded
// from the normal build by the testdata convention) and match the
// suite's diagnostics against `// want` expectation comments: every want
// must be hit by a diagnostic on its line whose message matches the
// regexp, and every diagnostic must be claimed by a want.

type wantComment struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantMarker = regexp.MustCompile("// want [`\"](.+)[`\"]$")

func collectWants(t *testing.T, prog *Program) []wantComment {
	t.Helper()
	var wants []wantComment
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantMarker.FindStringSubmatch(c.Text)
					if m == nil {
						if strings.Contains(c.Text, "// want") {
							t.Fatalf("%s: malformed want comment: %s", prog.Fset.Position(c.Pos()), c.Text)
						}
						continue
					}
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", prog.Fset.Position(c.Pos()), m[1], err)
					}
					p := prog.Fset.Position(c.Pos())
					wants = append(wants, wantComment{p.Filename, p.Line, re})
				}
			}
		}
	}
	return wants
}

func testGolden(t *testing.T, a Analyzer, pkgs ...string) {
	t.Helper()
	prog, err := LoadTestdata(filepath.Join("testdata", "src"), pkgs...)
	if err != nil {
		t.Fatalf("loading %v: %v", pkgs, err)
	}
	diags := Run(prog, []Analyzer{a})
	wants := collectWants(t, prog)
	if len(wants) == 0 {
		t.Fatalf("fixture %v has no want comments", pkgs)
	}
	matched := make([]bool, len(wants))
	for _, d := range diags {
		hit := false
		for i, w := range wants {
			if w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				hit = true
			}
		}
		if !hit {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func TestMapOrderGolden(t *testing.T) {
	testGolden(t, MapOrder{}, "maporder/a")
}

func TestFloatSumGolden(t *testing.T) {
	testGolden(t, FloatSum{}, "floatsum/a")
}

func TestLockOrderGolden(t *testing.T) {
	a := LockOrder{
		Classes: []LockClass{
			{PathSuffix: "lockorder/reg", TypeName: "Registry", Field: "mu", Label: "reg.Registry.mu"},
			{PathSuffix: "lockorder/st", TypeName: "Store", Field: "mu", Label: "st.Store.mu"},
		},
		Packages: []string{"lockorder/reg", "lockorder/st"},
	}
	testGolden(t, a, "lockorder/reg", "lockorder/st")
}

func TestHotAllocGolden(t *testing.T) {
	testGolden(t, HotAlloc{}, "hotalloc/a")
}

func TestNilGuardGolden(t *testing.T) {
	testGolden(t, NilGuard{}, "nilguard/a")
}

// TestIgnoreNeedsReason: a bare //summarylint:ignore is itself reported.
func TestIgnoreNeedsReason(t *testing.T) {
	prog, err := LoadTestdata(filepath.Join("testdata", "src"), "directive/a")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, []Analyzer{MapOrder{}})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "directive" || !strings.Contains(d.Message, "requires a reason") {
		t.Fatalf("unexpected diagnostic: %s", d)
	}
}

// TestScope: package-suffix scoping matches whole path segments only.
func TestScope(t *testing.T) {
	cases := []struct {
		path string
		sufs []string
		want bool
	}{
		{"repro/internal/core", []string{"internal/core"}, true},
		{"internal/core", []string{"internal/core"}, true},
		{"repro/internal/coreutils", []string{"internal/core"}, false},
		{"repro/internal/server", []string{"internal/core"}, false},
		{"anything", nil, true},
	}
	for _, c := range cases {
		if got := inScope(c.path, c.sufs); got != c.want {
			t.Errorf("inScope(%q, %v) = %v, want %v", c.path, c.sufs, got, c.want)
		}
	}
}

// TestRepoIsClean runs the full default suite over the repository
// itself, so `go test` fails on any new violation even before the CI
// summarylint step runs. This is also the regression test for the
// acceptance mutations: deleting an obs nil guard or swapping the two
// acquisitions in Registry.Snapshot turns this red.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list -export over the module")
	}
	prog, err := Load(filepath.Join("..", ".."), "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := Run(prog, DefaultAnalyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d summarylint finding(s); run: go run ./cmd/summarylint ./...", len(diags))
	}
}
