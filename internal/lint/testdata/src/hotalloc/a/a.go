// Package a is the hotalloc golden fixture: each bad* function seeds one
// allocation class inside a //summarylint:hot body.
package a

type item struct {
	k uint64
	v float64
}

func box(x interface{}) { _ = x }

//summarylint:hot
func badPtrLit(k uint64) *item {
	return &item{k: k} // want `&composite literal`
}

//summarylint:hot
func badSliceLit() []uint64 {
	return []uint64{1, 2, 3} // want `slice composite literal`
}

//summarylint:hot
func badMake(n int) []uint64 {
	return make([]uint64, 0, n) // want `make allocates`
}

//summarylint:hot
func badAppend(dst []uint64, k uint64) []uint64 {
	return append(dst, k) // want `append in hot path`
}

//summarylint:hot
func badClosure(n int) func() int {
	return func() int { return n } // want `closure in hot path`
}

//summarylint:hot
func badBox(k uint64) {
	box(k) // want `boxes k into interface`
}

//summarylint:hot
func badIfaceAssign(k uint64) {
	var x interface{}
	x = k // want `boxes k into interface`
	_ = x
}

//summarylint:hot
func badDefer(mu interface{ Unlock() }) {
	defer mu.Unlock() // want `defer in hot path`
}

// goodHot allocates nothing: map access, value struct literals, float
// math, and calls with concrete parameters are all fine.
//
//summarylint:hot
func goodHot(m map[uint64]float64, k uint64, v float64) item {
	if w, ok := m[k]; ok {
		v += w
	}
	m[k] = v
	return item{k: k, v: v}
}

// notHot allocates freely: only annotated functions are checked.
func notHot(n int) []uint64 {
	out := make([]uint64, 0, n)
	return append(out, 1)
}

//summarylint:hot
func suppressedAppend(dst []uint64, k uint64) []uint64 {
	//summarylint:ignore golden fixture: dst is presized by the caller
	return append(dst, k)
}
