// Package a is the maporder golden fixture: each bad* function seeds one
// violation class, each good* function exercises a benign sink.
package a

import "sort"

func sink(uint64) {}

func badCall(m map[uint64]float64) {
	for k := range m { // want `calls sink, whose order sensitivity`
		sink(k)
	}
}

func badFloat(m map[uint64]float64) float64 {
	total := 0.0
	for _, v := range m { // want `accumulates in iteration order`
		total += v
	}
	return total
}

func badAppendNoSort(m map[uint64]float64) []uint64 {
	var keys []uint64
	for k := range m { // want `appends map keys to keys without sorting`
		keys = append(keys, k)
	}
	return keys
}

func badReturn(m map[uint64]float64) uint64 {
	for k := range m { // want `returns from inside the loop`
		if k > 10 {
			return k
		}
	}
	return 0
}

func badAssign(m map[uint64]float64) float64 {
	last := 0.0
	for _, v := range m { // want `assigns last a value that may depend on iteration order`
		last = v
	}
	return last
}

func goodCount(m map[uint64]float64) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n++
		}
	}
	return n
}

func goodCollectSort(m map[uint64]float64) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func goodInvert(m map[uint64]uint64) map[uint64]uint64 {
	out := make(map[uint64]uint64, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func goodDelete(m map[uint64]float64) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

func goodFlag(m map[uint64]float64) bool {
	found := false
	for _, v := range m {
		if v < 0 {
			found = true
		}
	}
	return found
}

func suppressed(m map[uint64]float64) float64 {
	total := 0.0
	//summarylint:ignore golden fixture: suppression with a reason silences the finding
	for _, v := range m {
		total += v
	}
	return total
}
