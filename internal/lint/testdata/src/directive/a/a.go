// Package a is the directive golden fixture: an ignore without the
// mandatory reason is itself a finding.
package a

func count(m map[uint64]bool) int {
	n := 0
	//summarylint:ignore
	for range m {
		n++
	}
	return n
}
