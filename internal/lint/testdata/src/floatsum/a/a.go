// Package a is the floatsum golden fixture: unordered float
// accumulation over map ranges and over unsorted key slices.
package a

import "sort"

func badMapSum(m map[uint64]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `sum order is unspecified`
	}
	return total
}

func badUnsortedKeys(m map[uint64]float64) float64 {
	var keys []uint64
	for k := range m {
		keys = append(keys, k)
	}
	total := 0.0
	for _, k := range keys {
		total += m[k] // want `never sorted after collection`
	}
	return total
}

func goodSortedKeys(m map[uint64]float64) float64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	total := 0.0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

func goodIntCount(m map[uint64]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func goodLoopLocal(m map[uint64]float64) float64 {
	mx := 0.0
	for _, v := range m {
		d := v * 2
		d += 1 // per-iteration local: resets every pass
		if d > mx {
			mx = d
		}
	}
	return mx
}
