// Package st mimics the repo's store: the lower-ranked lock class.
package st

import "sync"

// Store owns the store-side mutex.
type Store struct {
	mu sync.Mutex
}

// Append takes and releases the store lock.
func (s *Store) Append() {
	s.mu.Lock()
	defer s.mu.Unlock()
}

// Snapshot takes and releases the store lock.
func (s *Store) Snapshot() {
	s.mu.Lock()
	s.mu.Unlock()
}
