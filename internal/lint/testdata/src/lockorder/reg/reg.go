// Package reg mimics the repo's registry: the higher-ranked lock class,
// reaching the store through a Persister interface exactly like
// server.Registry does.
package reg

import (
	"sync"

	"lockorder/st"
)

// Persister is the interface the registry persists through; st.Store is
// its only implementation in the fixture.
type Persister interface {
	Append()
	Snapshot()
}

// Registry owns the registry-side mutex.
type Registry struct {
	mu        sync.Mutex
	persister Persister
}

// GoodPut follows the hierarchy: registry lock first, then the
// persister's store lock through the interface.
func (r *Registry) GoodPut() {
	r.mu.Lock()
	r.persister.Append()
	r.mu.Unlock()
}

// BadSnapshot inverts the order: the persister acquires the store lock
// before the registry lock is taken. No overlap exists — the store
// releases before returning — but the hierarchy is about acquisition
// order on the path, so this must be flagged.
func (r *Registry) BadSnapshot() {
	r.persister.Snapshot()
	r.mu.Lock() // want `acquires reg.Registry.mu after st.Store.mu`
	r.mu.Unlock()
}

// BadDirect inverts the order through a concrete store reference.
func (r *Registry) BadDirect(s *st.Store) {
	s.Append()
	r.mu.Lock() // want `acquires reg.Registry.mu after st.Store.mu`
	r.mu.Unlock()
}

// CallsBad reaches the inversion only through BadSnapshot; it is
// reported there, not again at every caller.
func (r *Registry) CallsBad() {
	r.BadSnapshot()
}

// GoodWorker locks the store inside a goroutine body. The literal runs
// on its own stack, so no cross-path order with the registry lock below
// is implied.
func (r *Registry) GoodWorker(s *st.Store) {
	go func() {
		s.Append()
	}()
	r.mu.Lock()
	r.mu.Unlock()
}
