// Package a is the nilguard golden fixture: a nilsafe-annotated
// instrument with guarded, delegating, and unguarded methods.
package a

// Counter is inert on a nil receiver.
//
//summarylint:nilsafe
type Counter struct {
	n uint64
}

// Add is properly guarded.
func (c *Counter) Add(d uint64) {
	if c == nil {
		return
	}
	c.n += d
}

// Inc delegates to the guarded Add.
func (c *Counter) Inc() { c.Add(1) }

// Value guards with a zero return.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n
}

// ValueVia delegates through a return.
func (c *Counter) ValueVia() uint64 { return c.Value() }

// Bad lacks the guard and must be flagged.
func (c *Counter) Bad() uint64 { // want `lacks the nil-receiver guard`
	return c.n
}

// reset is unexported: out of scope.
func (c *Counter) reset() { c.n = 0 }

// Snapshot has a value receiver: it cannot be nil.
func (c Counter) Snapshot() uint64 { return c.n }

// Unmarked carries no annotation, so its methods are unchecked.
type Unmarked struct{ n uint64 }

// Value is unguarded but fine: the type is not marked nilsafe.
func (u *Unmarked) Value() uint64 { return u.n }
