// Package lint is the repo's domain-specific static-analysis suite: a
// dependency-free analyzer framework (go/parser + go/types, packages
// located with `go list`, the same no-third-party-tools idiom as
// cmd/benchgate) plus the five checks that turn this reproduction's
// invariants from convention into machinery:
//
//   - maporder: no `for range` over a map inside the deterministic
//     encode/query packages unless the loop provably feeds an
//     order-insensitive sink — the PR-5 nondeterminism class (v1
//     set-summary members encoded in map order) caught at review time.
//   - floatsum: no float64 accumulation whose iteration order is
//     unspecified — map ranges, or ranges over slices collected from map
//     keys and never sorted. Float addition is not associative; an
//     unordered sum is a nondeterministic estimate.
//   - lockorder: the registry lock is acquired before the store lock,
//     on every path, including through the Persister interface — the
//     rule Registry.Snapshot documents, checked over a cross-package
//     call graph.
//   - hotalloc: functions annotated `//summarylint:hot` contain no
//     allocation sites (heap-escaping composite literals, make/new,
//     closures, un-presized appends, implicit interface conversions) —
//     the static complement of benchgate's 0 allocs/op runtime gate.
//   - nilguard: exported pointer-receiver methods on types annotated
//     `//summarylint:nilsafe` (the obs instruments) begin with the
//     documented nil-receiver guard, or delegate to a method that does.
//
// Diagnostics are suppressible per line with `//summarylint:ignore
// <reason>` on the offending line or the line above; the reason is
// mandatory — a bare ignore is itself a diagnostic. The suite is
// diagnostics-only by design (no -fix): every finding either gets a code
// change or a written-down reason.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, positioned for editors and CI.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the full analysis unit: every target package, sharing one
// FileSet and one type-checker universe (cross-package identities hold).
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// Analyzer is one check over a whole Program. Checks are whole-program,
// not per-package, because lockorder needs the cross-package call graph;
// the single-package analyzers simply loop.
type Analyzer interface {
	Name() string
	Doc() string
	Check(prog *Program) []Diagnostic
}

// Run executes the analyzers and applies `//summarylint:ignore`
// suppressions: a diagnostic is dropped when an ignore directive with a
// reason sits on its line or the line directly above. Ignore directives
// without a reason are reported as diagnostics themselves (analyzer
// "directive"), so a suppression can never silently lose its
// justification.
func Run(prog *Program, analyzers []Analyzer) []Diagnostic {
	ignores := collectIgnores(prog)
	var out []Diagnostic
	for _, a := range analyzers {
		for _, d := range a.Check(prog) {
			d.normalize()
			if ignores.suppresses(d.File, d.Line) {
				continue
			}
			out = append(out, d)
		}
	}
	out = append(out, ignores.missingReasons()...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// normalize fills the flat position fields from Pos.
func (d *Diagnostic) normalize() {
	if d.File == "" {
		d.File = d.Pos.Filename
		d.Line = d.Pos.Line
		d.Col = d.Pos.Column
	}
}

// diag builds a Diagnostic at a token.Pos.
func diag(fset *token.FileSet, analyzer string, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{Analyzer: analyzer, Pos: fset.Position(pos), Message: fmt.Sprintf(format, args...)}
}

// inScope reports whether a package path falls under any of the
// configured path suffixes (nil means every package is in scope). A
// suffix matches whole path segments: "internal/core" matches
// "repro/internal/core" but not "repro/internal/coreutils".
func inScope(path string, suffixes []string) bool {
	if len(suffixes) == 0 {
		return true
	}
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// derefNamed unwraps pointers and returns the named type, or nil.
func derefNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isMapType reports whether t's underlying type is a map. Type
// parameters are never considered maps (generic code is out of scope for
// maporder — the concrete instantiations live in concrete packages).
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.(*types.TypeParam); ok {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isInterfaceType reports whether t is an interface for boxing purposes.
// Type parameters are excluded: passing a T to a parameter of type T is
// not a conversion, even though a type parameter's underlying type is an
// interface.
func isInterfaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.(*types.TypeParam); ok {
		return false
	}
	return types.IsInterface(t)
}

// basicInfo returns the types.BasicInfo of t's core basic type (0 when t
// is not basic).
func basicInfo(t types.Type) types.BasicInfo {
	if t == nil {
		return 0
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return 0
	}
	return b.Info()
}

// sortCalls recognizes the standard ways a collected key slice becomes
// deterministic: sort.Strings/Ints/Float64s/Slice/SliceStable/Sort and
// slices.Sort/SortFunc/SortStableFunc.
var sortCalls = regexp.MustCompile(`^(sort\.(Strings|Ints|Float64s|Slice|SliceStable|Sort)|slices\.(Sort|SortFunc|SortStableFunc))$`)

// isSortCallOn reports whether call sorts the expression rendered as
// target (by source text — the approximation is deliberate and cheap).
func isSortCallOn(call *ast.CallExpr, target string) bool {
	name := exprText(call.Fun)
	if !sortCalls.MatchString(name) || len(call.Args) == 0 {
		return false
	}
	return exprText(call.Args[0]) == target
}

// exprText renders an expression as compact source text for identity
// comparisons (x.y, *p, pkg.F).
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.BasicLit:
		return e.Value
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprText(e.X)
	case *ast.IndexExpr:
		return exprText(e.X) + "[" + exprText(e.Index) + "]"
	case *ast.ParenExpr:
		return exprText(e.X)
	case *ast.CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = exprText(a)
		}
		return exprText(e.Fun) + "(" + strings.Join(args, ",") + ")"
	default:
		return fmt.Sprintf("%T", e)
	}
}
