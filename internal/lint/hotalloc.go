package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc checks functions annotated `//summarylint:hot`: the bodies
// behind benchgate's 0 allocs/op gate. Flagged constructs:
//
//   - &CompositeLit (escapes to the heap under any capture)
//   - slice, map, and channel composite literals
//   - make / new
//   - append (growth reallocates; presize at construction, or suppress
//     with a reason when the backing array's capacity is pinned)
//   - function literals (closure allocation)
//   - go / defer statements (scheduling and frame costs, not hot-path)
//   - implicit interface conversions: a concrete value passed to an
//     interface parameter, assigned to an interface variable, or
//     returned as an interface boxes its operand
//
// Struct composite literals used as values (rankedKey{key, r}) are
// allowed — they stay on the stack. Method calls on already-interface
// values are allowed — the boxing happened elsewhere. Type parameters
// are never treated as interfaces. The check is intraprocedural: callees
// are covered by annotating them too.
type HotAlloc struct{}

func (HotAlloc) Name() string { return "hotalloc" }
func (HotAlloc) Doc() string {
	return "//summarylint:hot functions must contain no allocation sites"
}

func (a HotAlloc) Check(prog *Program) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isHot(fd) {
					continue
				}
				out = append(out, checkHotBody(prog, pkg, fd)...)
			}
		}
	}
	return out
}

func checkHotBody(prog *Program, pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	bad := func(n ast.Node, format string, args ...any) {
		out = append(out, diag(prog.Fset, "hotalloc", n.Pos(), format, args...))
	}
	info := pkg.Info

	// Result types of the enclosing function, for return-site boxing.
	var results []types.Type
	if sig, ok := info.Defs[fd.Name].(*types.Func); ok {
		res := sig.Type().(*types.Signature).Results()
		for i := 0; i < res.Len(); i++ {
			results = append(results, res.At(i).Type())
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			bad(n, "closure in hot path: the func literal allocates")
			return false // its body is the closure's problem
		case *ast.GoStmt:
			bad(n, "go statement in hot path")
		case *ast.DeferStmt:
			bad(n, "defer in hot path")
		case *ast.UnaryExpr:
			if _, ok := n.X.(*ast.CompositeLit); ok {
				bad(n, "&composite literal in hot path escapes to the heap")
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map, *types.Chan:
				bad(n, "%s composite literal allocates in hot path", typeKind(info.TypeOf(n)))
			}
		case *ast.CallExpr:
			checkHotCall(info, n, bad)
		case *ast.AssignStmt:
			// Boxing at assignment: interface LHS, concrete RHS.
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					lt := info.TypeOf(n.Lhs[i])
					if isInterfaceType(lt) && boxes(info, n.Rhs[i]) {
						bad(n.Rhs[i], "assignment boxes %s into interface %s", exprText(n.Rhs[i]), lt)
					}
				}
			}
		case *ast.ReturnStmt:
			if len(n.Results) == len(results) {
				for i, r := range n.Results {
					if isInterfaceType(results[i]) && boxes(info, r) {
						bad(r, "return boxes %s into interface %s", exprText(r), results[i])
					}
				}
			}
		}
		return true
	})
	return out
}

// checkHotCall flags allocating builtins and interface boxing at call
// arguments.
func checkHotCall(info *types.Info, call *ast.CallExpr, bad func(ast.Node, string, ...any)) {
	if id, ok := call.Fun.(*ast.Ident); ok && isBuiltinUse(info, id) {
		switch id.Name {
		case "make":
			bad(call, "make allocates in hot path (hoist to construction)")
			return
		case "new":
			bad(call, "new allocates in hot path")
			return
		case "append":
			bad(call, "append in hot path may grow the backing array (presize at construction, or //summarylint:ignore with the capacity argument)")
			return
		case "len", "cap", "delete", "copy", "min", "max", "panic", "print", "println", "clear":
			return
		}
	}
	// Explicit conversion to an interface type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if isInterfaceType(tv.Type) && len(call.Args) == 1 && boxes(info, call.Args[0]) {
			bad(call, "conversion boxes %s into interface %s", exprText(call.Args[0]), tv.Type)
		}
		return
	}
	// Interface parameters box concrete arguments.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic():
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		}
		if pt != nil && isInterfaceType(pt) && boxes(info, arg) {
			bad(arg, "argument boxes %s into interface %s", exprText(arg), pt)
		}
	}
}

// boxes reports whether expr is a concrete (non-interface, non-nil)
// value — i.e. storing it in an interface allocates. Untyped constants
// that fit in an iface word still box; flag them too, except nil.
func boxes(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	return !isInterfaceType(tv.Type)
}

// isBuiltinUse reports whether id resolves to a universe builtin (or is
// unresolved, the conservative reading).
func isBuiltinUse(info *types.Info, id *ast.Ident) bool {
	obj := info.Uses[id]
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

func typeKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	case *types.Chan:
		return "channel"
	}
	return "composite"
}
