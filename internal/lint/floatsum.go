package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatSum flags float64 accumulation whose iteration order is
// unspecified. Float addition is not associative, so a sum taken in map
// order is a nondeterministic estimate — the exact bug class
// WeightedSample.SubsetSum fixed in PR 2 and ObliviousSample.SubsetSum
// reintroduced. Two shapes are detected:
//
//  1. a float compound assignment (+=, -=, *=) to a variable declared
//     outside the loop, inside a `for range` over a map;
//  2. a range over a slice that was filled from a map range earlier in
//     the same function and never sorted in between, when the loop body
//     float-accumulates.
//
// maporder subsumes shape 1 inside its packages; FloatSum also covers
// estimator/query packages where map iteration is otherwise tolerated.
type FloatSum struct {
	Packages []string
}

func (FloatSum) Name() string { return "floatsum" }
func (FloatSum) Doc() string {
	return "float64 accumulation must have a specified iteration order"
}

func (a FloatSum) Check(prog *Program) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		if !inScope(pkg.Path, a.Packages) {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, checkFloatSums(prog.Fset, pkg, fd)...)
			}
		}
	}
	return out
}

func checkFloatSums(fset *token.FileSet, pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic

	// Shape 1: float accumulation directly inside a map range.
	var mapRanges []*ast.RangeStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok && isMapType(pkg.Info.TypeOf(rs.X)) {
			mapRanges = append(mapRanges, rs)
		}
		return true
	})
	for _, rs := range mapRanges {
		for _, acc := range floatAccums(pkg, rs.Body) {
			out = append(out, diag(fset, "floatsum", acc.Pos(),
				"float accumulation %s inside range over map %s: sum order is unspecified (collect and sort the keys first)",
				exprText(acc.Lhs[0]), exprText(rs.X)))
		}
	}

	// Shape 2: slices filled from map keys, ranged without a sort.
	type fill struct {
		target string
		end    token.Pos
	}
	var fills []fill
	for _, rs := range mapRanges {
		ast.Inspect(rs.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && isBuiltinUse(pkg.Info, id) &&
				len(call.Args) > 0 && exprText(call.Args[0]) == exprText(as.Lhs[0]) {
				fills = append(fills, fill{exprText(as.Lhs[0]), rs.End()})
			}
			return true
		})
	}
	if len(fills) == 0 {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || isMapType(pkg.Info.TypeOf(rs.X)) {
			return true
		}
		target := exprText(rs.X)
		for _, fl := range fills {
			if fl.target != target || rs.Pos() <= fl.end {
				continue
			}
			if sortBetween(fd, target, fl.end, rs.Pos()) {
				continue
			}
			for _, acc := range floatAccums(pkg, rs.Body) {
				out = append(out, diag(fset, "floatsum", acc.Pos(),
					"float accumulation %s while ranging %s, a slice of map keys never sorted after collection",
					exprText(acc.Lhs[0]), target))
			}
		}
		return true
	})
	return out
}

// floatAccums finds compound assignments (+=, -=, *=, /=) to
// float-typed variables declared outside body.
func floatAccums(pkg *Package, body *ast.BlockStmt) []*ast.AssignStmt {
	var out []*ast.AssignStmt
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		lhs := as.Lhs[0]
		if basicInfo(pkg.Info.TypeOf(lhs))&types.IsFloat == 0 {
			return true
		}
		// A variable declared inside the loop body resets every
		// iteration and cannot carry order across iterations.
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil &&
				obj.Pos() >= body.Pos() && obj.Pos() < body.End() {
				return true
			}
		}
		out = append(out, as)
		return true
	})
	return out
}

// sortBetween reports whether target is sorted by a recognized sort call
// positioned in (lo, hi) within fd.
func sortBetween(fd *ast.FuncDecl, target string, lo, hi token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= lo || call.Pos() >= hi {
			return true
		}
		if isSortCallOn(call, target) {
			found = true
		}
		return !found
	})
	return found
}
