package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for range` over a map in the deterministic packages
// unless every statement in the loop body is a provably order-insensitive
// sink. The benign vocabulary is deliberately small — anything outside it
// needs either a code change (sort the keys first) or a written-down
// `//summarylint:ignore reason`:
//
//   - declarations of per-iteration locals
//   - map-index assignment or delete (set semantics)
//   - integer/boolean counters: ++, --, integer compound assignment,
//     assignment of a constant
//   - `s = append(s, ...)` where s is sorted later in the same function
//     (collect-then-sort)
//   - control flow around those: if/else, switch, nested blocks and
//     loops, continue/break
//
// Float accumulation, function-call statements, returns from inside the
// loop, and writes through anything order-dependent are all flagged.
// Conditions of `if` statements are not inspected (reads are fine; it is
// writes and escapes that transmit iteration order).
type MapOrder struct {
	// Packages limits the check to these import-path suffixes
	// (nil = every package in the Program).
	Packages []string
}

func (MapOrder) Name() string { return "maporder" }
func (MapOrder) Doc() string {
	return "map iteration in deterministic packages must feed an order-insensitive sink"
}

func (a MapOrder) Check(prog *Program) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		if !inScope(pkg.Path, a.Packages) {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, checkFuncMapRanges(prog.Fset, pkg, fd)...)
			}
		}
	}
	return out
}

func checkFuncMapRanges(fset *token.FileSet, pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !isMapType(pkg.Info.TypeOf(rs.X)) {
			return true
		}
		w := &mapRangeWalker{pkg: pkg, fn: fd}
		w.stmts(rs.Body.List)
		for _, app := range w.appends {
			if !sortedAfter(pkg, fd, rs, app.target) {
				w.bad(app.pos, "appends map keys to %s without sorting it afterwards", app.target)
			}
		}
		if len(w.findings) > 0 {
			// One diagnostic per loop, anchored at the range keyword, with
			// the first offending statement named: the fix is almost always
			// "sort the keys first", not N local edits.
			f := w.findings[0]
			out = append(out, diag(fset, "maporder", rs.For,
				"range over map %s has an order-sensitive body: %s (sort the keys first, or //summarylint:ignore <reason>)",
				exprText(rs.X), f.what))
		}
		return true // nested map ranges get their own walk
	})
	return out
}

type mapRangeFinding struct {
	pos  token.Pos
	what string
}

type mapRangeAppend struct {
	pos    token.Pos
	target string
}

type mapRangeWalker struct {
	pkg      *Package
	fn       *ast.FuncDecl
	findings []mapRangeFinding
	appends  []mapRangeAppend
}

func (w *mapRangeWalker) bad(pos token.Pos, format string, args ...any) {
	w.findings = append(w.findings, mapRangeFinding{pos, fmt.Sprintf(format, args...)})
}

func (w *mapRangeWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *mapRangeWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.DeclStmt, *ast.EmptyStmt:
		// Per-iteration locals are order-free.
	case *ast.BranchStmt:
		// continue/break/goto select which iterations run, not an order.
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmts(s.Body.List)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body)
		}
	case *ast.RangeStmt:
		w.stmts(s.Body.List)
	case *ast.ForStmt:
		w.stmts(s.Body.List)
	case *ast.IncDecStmt:
		if basicInfo(w.pkg.Info.TypeOf(s.X))&types.IsInteger == 0 {
			w.bad(s.Pos(), "%s%s on a non-integer", exprText(s.X), s.Tok)
		}
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && isBuiltinUse(w.pkg.Info, id) {
				return // builtin delete: set semantics
			}
			w.bad(s.Pos(), "calls %s, whose order sensitivity summarylint cannot prove", exprText(call.Fun))
			return
		}
		w.bad(s.Pos(), "statement %s is not in the order-insensitive vocabulary", exprText(s.X))
	case *ast.ReturnStmt:
		w.bad(s.Pos(), "returns from inside the loop (first-match-wins depends on iteration order)")
	default:
		w.bad(s.Pos(), "statement is not in the order-insensitive vocabulary")
	}
}

func (w *mapRangeWalker) assign(s *ast.AssignStmt) {
	if s.Tok == token.DEFINE {
		return // fresh per-iteration locals
	}
	// Compound assignment: allowed on integers (counting); floats and
	// everything else accumulate in iteration order.
	if s.Tok != token.ASSIGN {
		lhs := s.Lhs[0]
		if _, isIndex := lhs.(*ast.IndexExpr); isIndex && w.isMapIndex(lhs) {
			return
		}
		if basicInfo(w.pkg.Info.TypeOf(lhs))&types.IsInteger != 0 {
			return
		}
		w.bad(s.Pos(), "%s %s accumulates in iteration order", exprText(lhs), s.Tok)
		return
	}
	for i, lhs := range s.Lhs {
		switch lhs := lhs.(type) {
		case *ast.IndexExpr:
			if w.isMapIndex(lhs) {
				continue // map[k] = v: set semantics
			}
			w.bad(s.Pos(), "writes %s through an index that may depend on iteration order", exprText(lhs))
		case *ast.Ident, *ast.SelectorExpr:
			target := lhs.(ast.Expr)
			if id, ok := target.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			rhs := ast.Expr(nil)
			if len(s.Rhs) == len(s.Lhs) {
				rhs = s.Rhs[i]
			}
			if call, ok := rhs.(*ast.CallExpr); ok && w.isSelfAppend(target, call) {
				w.appends = append(w.appends, mapRangeAppend{s.Pos(), exprText(target)})
				continue
			}
			if rhs != nil {
				if tv, ok := w.pkg.Info.Types[rhs]; ok && tv.Value != nil {
					continue // x = <constant>: idempotent, order-free
				}
			}
			w.bad(s.Pos(), "assigns %s a value that may depend on iteration order", exprText(target))
		default:
			w.bad(s.Pos(), "assignment target is not in the order-insensitive vocabulary")
		}
	}
}

// isMapIndex reports whether e is an index into a map.
func (w *mapRangeWalker) isMapIndex(e ast.Expr) bool {
	ix, ok := e.(*ast.IndexExpr)
	return ok && isMapType(w.pkg.Info.TypeOf(ix.X))
}

// isSelfAppend matches `s = append(s, ...)` (same expression text).
func (w *mapRangeWalker) isSelfAppend(lhs ast.Expr, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || !isBuiltinUse(w.pkg.Info, id) || len(call.Args) == 0 {
		return false
	}
	return exprText(call.Args[0]) == exprText(lhs)
}

// sortedAfter reports whether target is passed to a recognized sort call
// somewhere after the range loop in the same function.
func sortedAfter(pkg *Package, fd *ast.FuncDecl, rs *ast.RangeStmt, target string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		if isSortCallOn(call, target) {
			found = true
		}
		return !found
	})
	return found
}
