package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockClass names one mutex in the lock hierarchy: the field Field on
// type TypeName in the package whose import path ends with PathSuffix.
// A class's position in LockOrder.Classes is its rank — lower ranks must
// be acquired first.
type LockClass struct {
	PathSuffix string
	TypeName   string
	Field      string
	Label      string // human name used in diagnostics
}

// LockOrder builds a per-function mutex-acquisition sequence and checks
// it against the declared hierarchy, across packages and through
// interfaces: a call to an interface method (the registry's Persister)
// splices in the summaries of every concrete implementation found in the
// Program.
//
// The model is acquisition ORDER, not hold-set overlap: Registry.Snapshot
// documents "registry lock before the persister's" even though the store
// releases its own lock before returning, so overlap never exists — the
// invariant is about the sequence of first acquisitions on a path.
// Releases are therefore not modeled; a function that acquires the store
// lock, releases it, and then takes the registry lock is still flagged,
// which is exactly the rule the store's commit callback comment states
// ("commit re-enters the registry, whose lock ranks above the store's").
// Function literals are analyzed as independent anonymous functions
// (goroutine bodies and callbacks run on their own stacks); calls
// through plain func values are not resolved.
//
// Because releases are not modeled, sequential wiring code (a main that
// opens the store, then configures the registry) would trip the order
// rule without ever holding two locks; Packages therefore limits which
// functions are CHECKED to the packages that own the hierarchy.
// Summaries are still computed over the whole Program, so a checked
// function inherits acquisitions made anywhere it calls into.
type LockOrder struct {
	Classes []LockClass
	// Packages limits the violation pass to functions declared in these
	// import-path suffixes (nil = all).
	Packages []string
}

// DefaultLockOrder is the repo's hierarchy: the registry lock outranks
// the store lock (see Registry.Snapshot and Store.worker).
func DefaultLockOrder() LockOrder {
	return LockOrder{
		Classes: []LockClass{
			{PathSuffix: "internal/server", TypeName: "Registry", Field: "mu", Label: "server.Registry.mu"},
			{PathSuffix: "internal/store", TypeName: "Store", Field: "mu", Label: "store.Store.mu"},
		},
		Packages: []string{"internal/server", "internal/store"},
	}
}

func (LockOrder) Name() string { return "lockorder" }
func (LockOrder) Doc() string {
	return "mutexes must be acquired in declared rank order on every call path"
}

// lockEvent is one entry in a function's linear event sequence.
type lockEvent struct {
	pos     token.Pos
	class   int           // acquisition: class index, or -1
	callees []*types.Func // call: statically resolved targets (possibly via interface)
	label   string        // call: callee name for diagnostics
}

// lockNode is one analyzed function (declared or literal).
type lockNode struct {
	name    string
	pkgPath string
	obj     *types.Func // nil for function literals
	events  []lockEvent
	summary []int // ordered first-acquisition classes, fixpoint result
}

func (a LockOrder) Check(prog *Program) []Diagnostic {
	// Gather events. Function literals become anonymous nodes: their
	// bodies run on other goroutines or as callbacks, so their internal
	// order is checked but not folded into the enclosing function.
	var nodes []*lockNode
	byObj := make(map[*types.Func]*lockNode)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn := funcObj(pkg, fd)
				if fn == nil {
					continue
				}
				node := &lockNode{name: pkg.Path + "." + fd.Name.Name, pkgPath: pkg.Path, obj: fn}
				var lits []*ast.FuncLit
				node.events, lits = a.collectEvents(prog, pkg, fd.Body, nil)
				nodes = append(nodes, node)
				byObj[fn] = node
				for _, lit := range lits {
					ln := &lockNode{name: node.name + ".func", pkgPath: pkg.Path}
					ln.events, _ = a.collectEvents(prog, pkg, lit.Body, lits)
					nodes = append(nodes, ln)
				}
			}
		}
	}

	// Fixpoint: a function's summary is the ordered dedup of its own
	// acquisitions and its callees' summaries. Summaries only grow, so
	// iteration terminates.
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			next := summarize(n, byObj)
			if !equalInts(next, n.summary) {
				n.summary = next
				changed = true
			}
		}
	}

	// Violation pass: walk each function's events linearly. A class from
	// a call's summary is only checked against classes acquired BEFORE
	// the call, so a callee that is itself inverted is reported once, at
	// the callee, not again at every caller.
	var out []Diagnostic
	seen := make(map[string]bool)
	for _, n := range nodes {
		if !inScope(n.pkgPath, a.Packages) {
			continue
		}
		acquired := []int{}
		for _, ev := range n.events {
			if ev.class >= 0 {
				out = a.report(out, seen, prog, n, acquired, ev.class, ev.pos, "")
				acquired = addClass(acquired, ev.class)
				continue
			}
			pre := append([]int(nil), acquired...)
			for _, callee := range ev.callees {
				cn := byObj[callee]
				if cn == nil {
					continue
				}
				for _, c := range cn.summary {
					if !hasClass(acquired, c) {
						out = a.report(out, seen, prog, n, pre, c, ev.pos, ev.label)
					}
					acquired = addClass(acquired, c)
				}
			}
		}
	}
	return out
}

func (a LockOrder) report(out []Diagnostic, seen map[string]bool, prog *Program, n *lockNode, held []int, c int, pos token.Pos, via string) []Diagnostic {
	for _, d := range held {
		if d <= c {
			continue
		}
		key := n.name + a.Classes[c].Label + a.Classes[d].Label
		if seen[key] {
			continue
		}
		seen[key] = true
		how := "acquires"
		if via != "" {
			how = "reaches (via " + via + ")"
		}
		out = append(out, diag(prog.Fset, "lockorder", pos,
			"%s %s after %s: the lock hierarchy requires %s before %s",
			how, a.Classes[c].Label, a.Classes[d].Label, a.Classes[c].Label, a.Classes[d].Label))
	}
	return out
}

// collectEvents walks body in syntactic order, skipping nested function
// literals (returned separately), and records acquisitions and calls.
func (a LockOrder) collectEvents(prog *Program, pkg *Package, body *ast.BlockStmt, _ []*ast.FuncLit) ([]lockEvent, []*ast.FuncLit) {
	var events []lockEvent
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if c := a.acquisition(pkg, call); c >= 0 {
			events = append(events, lockEvent{pos: call.Pos(), class: c})
			return true
		}
		if callees, label := resolveCall(prog, pkg, call); len(callees) > 0 {
			events = append(events, lockEvent{pos: call.Pos(), class: -1, callees: callees, label: label})
		}
		return true
	})
	return events, lits
}

// acquisition matches `x.<field>.Lock()` / `.RLock()` where x's named
// type is a configured lock class; returns the class index or -1.
func (a LockOrder) acquisition(pkg *Package, call *ast.CallExpr) int {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return -1
	}
	field, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return -1
	}
	owner := derefNamed(pkg.Info.TypeOf(field.X))
	if owner == nil || owner.Obj().Pkg() == nil {
		return -1
	}
	for i, c := range a.Classes {
		if field.Sel.Name == c.Field && owner.Obj().Name() == c.TypeName &&
			inScope(owner.Obj().Pkg().Path(), []string{c.PathSuffix}) {
			return i
		}
	}
	return -1
}

// resolveCall maps a call expression to the declared functions it may
// invoke: a direct function or method call resolves to one target; a
// call through an interface resolves to the matching method on every
// concrete type in the Program that implements it.
func resolveCall(prog *Program, pkg *Package, call *ast.CallExpr) ([]*types.Func, string) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return []*types.Func{fn}, fun.Name
		}
	case *ast.SelectorExpr:
		fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil, ""
		}
		recv := pkg.Info.TypeOf(fun.X)
		if recv != nil && isInterfaceType(recv) {
			iface, _ := recv.Underlying().(*types.Interface)
			if iface != nil {
				return implementors(prog, iface, fun.Sel.Name), exprText(fun)
			}
		}
		return []*types.Func{fn}, exprText(fun)
	}
	return nil, ""
}

// implementors finds method `name` on every concrete named type in the
// Program that satisfies iface (by value or pointer receiver).
func implementors(prog *Program, iface *types.Interface, name string) []*types.Func {
	var out []*types.Func
	for _, pkg := range prog.Pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, tn := range names {
			obj, ok := scope.Lookup(tn).(*types.TypeName)
			if !ok || obj.IsAlias() {
				continue
			}
			named, ok := obj.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
				continue
			}
			m, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, pkg.Types, name)
			if fn, ok := m.(*types.Func); ok {
				out = append(out, fn)
			}
		}
	}
	return out
}

// summarize folds a node's events into its ordered first-acquisition
// summary using current callee summaries.
func summarize(n *lockNode, byObj map[*types.Func]*lockNode) []int {
	var sum []int
	for _, ev := range n.events {
		if ev.class >= 0 {
			sum = addClass(sum, ev.class)
			continue
		}
		for _, callee := range ev.callees {
			if cn := byObj[callee]; cn != nil {
				for _, c := range cn.summary {
					sum = addClass(sum, c)
				}
			}
		}
	}
	return sum
}

func funcObj(pkg *Package, fd *ast.FuncDecl) *types.Func {
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	return fn
}

func hasClass(s []int, c int) bool {
	for _, x := range s {
		if x == c {
			return true
		}
	}
	return false
}

func addClass(s []int, c int) []int {
	if hasClass(s, c) {
		return s
	}
	return append(s, c)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
