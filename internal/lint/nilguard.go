package lint

import (
	"go/ast"
)

// NilGuard enforces the obs package's documented contract: instruments
// obtained from a nil registry are inert, so every exported
// pointer-receiver method on a type annotated `//summarylint:nilsafe`
// must either
//
//   - begin with the guard `if <recv> == nil { return ... }`, or
//   - be a single-statement delegation to another method on the same
//     receiver (Counter.Inc -> c.Add(1)), which carries the guard.
//
// Unexported methods and value-receiver methods are out of scope (a
// value receiver cannot be nil).
type NilGuard struct{}

func (NilGuard) Name() string { return "nilguard" }
func (NilGuard) Doc() string {
	return "exported methods on nilsafe types must begin with the nil-receiver guard"
}

func (a NilGuard) Check(prog *Program) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		marked := make(map[string]bool)
		for _, f := range pkg.Files {
			for name := range nilsafeTypes(f) {
				marked[name] = true
			}
		}
		if len(marked) == 0 {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Recv == nil || !fd.Name.IsExported() {
					continue
				}
				recvName, typeName, isPtr := receiverInfo(fd)
				if !isPtr || !marked[typeName] {
					continue
				}
				if hasNilGuard(fd, recvName) || delegates(fd, recvName) {
					continue
				}
				out = append(out, diag(prog.Fset, "nilguard", fd.Pos(),
					"exported method (*%s).%s lacks the nil-receiver guard `if %s == nil { return ... }` required by //summarylint:nilsafe",
					typeName, fd.Name.Name, nonEmpty(recvName, "recv")))
			}
		}
	}
	return out
}

// receiverInfo extracts the receiver variable name, its type name, and
// whether it is a pointer receiver.
func receiverInfo(fd *ast.FuncDecl) (recvName, typeName string, isPtr bool) {
	if len(fd.Recv.List) != 1 {
		return "", "", false
	}
	field := fd.Recv.List[0]
	if len(field.Names) == 1 {
		recvName = field.Names[0].Name
	}
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		isPtr = true
		t = star.X
	}
	// Generic receivers look like T[P]; unwrap the index.
	switch t := t.(type) {
	case *ast.Ident:
		typeName = t.Name
	case *ast.IndexExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			typeName = id.Name
		}
	case *ast.IndexListExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			typeName = id.Name
		}
	}
	return recvName, typeName, isPtr
}

// hasNilGuard matches a first statement of the form
// `if <recv> == nil { return ... }` (single return, no else).
func hasNilGuard(fd *ast.FuncDecl, recvName string) bool {
	if recvName == "" || len(fd.Body.List) == 0 {
		return false
	}
	ifs, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil || ifs.Else != nil {
		return false
	}
	cmp, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || cmp.Op.String() != "==" {
		return false
	}
	if !(isIdent(cmp.X, recvName) && isIdent(cmp.Y, "nil")) &&
		!(isIdent(cmp.X, "nil") && isIdent(cmp.Y, recvName)) {
		return false
	}
	if len(ifs.Body.List) != 1 {
		return false
	}
	_, ok = ifs.Body.List[0].(*ast.ReturnStmt)
	return ok
}

// delegates matches a body that is exactly one call to a method on the
// same receiver, as a statement or a return.
func delegates(fd *ast.FuncDecl, recvName string) bool {
	if recvName == "" || len(fd.Body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch s := fd.Body.List[0].(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.ReturnStmt:
		if len(s.Results) == 1 {
			call, _ = s.Results[0].(*ast.CallExpr)
		}
	}
	if call == nil {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return isIdent(sel.X, recvName)
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func nonEmpty(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}
