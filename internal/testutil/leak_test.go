package testutil

import (
	"testing"
	"time"
)

func TestNewGoroutinesDetectsALiveGoroutine(t *testing.T) {
	base := goroutineIDs()
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		<-done
	}()
	leaked := waitForDrain(base, 50*time.Millisecond)
	if len(leaked) != 1 {
		t.Fatalf("got %d new goroutines, want exactly the blocked one:\n%v", len(leaked), leaked)
	}
	close(done)
	<-exited
	if leaked := waitForDrain(base, 2*time.Second); len(leaked) != 0 {
		t.Fatalf("goroutine still reported after exit: %v", leaked)
	}
}

func TestVerifyNoLeaksPassesOnCleanTest(t *testing.T) {
	VerifyNoLeaks(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
