// Package testutil holds shared test-only helpers. It must stay
// dependency-free and is never imported by production code.
package testutil

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// VerifyNoLeaks snapshots the goroutines running when it is called and
// registers a cleanup that fails the test if goroutines created during
// the test are still running when it ends. Components that own
// goroutines (the async engine's shard workers, the store's snapshot
// worker, an http.Server) must have released all of them by then — a
// Close that returns before its workers exit is exactly the bug this
// catches.
//
// Goroutine exit is asynchronous even after a correct Close returns
// (the worker may still be between its last send and runtime.goexit),
// so the check polls with a grace period instead of failing on the
// first dirty snapshot.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	base := goroutineIDs()
	t.Cleanup(func() {
		t.Helper()
		leaked := waitForDrain(base, 2*time.Second)
		if len(leaked) > 0 {
			t.Errorf("%d goroutine(s) leaked by this test:\n\n%s",
				len(leaked), strings.Join(leaked, "\n\n"))
		}
	})
}

// waitForDrain polls until every goroutine not in base has exited, or
// the grace period elapses; it returns the stacks still alive at the
// deadline.
func waitForDrain(base map[string]bool, grace time.Duration) []string {
	deadline := time.Now().Add(grace)
	for {
		leaked := newGoroutines(base)
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// goroutineIDs returns the set of currently-live goroutine IDs.
func goroutineIDs() map[string]bool {
	ids := make(map[string]bool)
	for _, g := range stacks() {
		ids[goroutineID(g)] = true
	}
	return ids
}

// newGoroutines returns the stacks of goroutines that are alive now but
// were not in base, excluding runtime-internal ones (GC workers, the
// scavenger, timer goroutines) that the runtime starts on its own
// schedule and no test can be blamed for.
func newGoroutines(base map[string]bool) []string {
	var out []string
	for _, g := range stacks() {
		if base[goroutineID(g)] {
			continue
		}
		if strings.Contains(g, "created by runtime") {
			continue
		}
		out = append(out, g)
	}
	return out
}

// stacks captures every goroutine's stack as one chunk per goroutine.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	return strings.Split(strings.TrimSpace(string(buf)), "\n\n")
}

// goroutineID extracts the "goroutine N [state]:" header from a stack
// chunk. The numeric ID is stable for the goroutine's lifetime and never
// reused while it runs, which is all the snapshot diff needs.
func goroutineID(chunk string) string {
	header, _, _ := strings.Cut(chunk, "\n")
	header = strings.TrimPrefix(header, "goroutine ")
	id, _, _ := strings.Cut(header, " ")
	return id
}
