// Package api defines the request/response bodies of the summary server's
// v1 HTTP API. The server (internal/server) and the Go client
// (pkg/client) share these types, so the two sides cannot drift — and
// they live outside internal/ so importers of pkg/client can name them.
package api

// MaxDatasetName is the longest dataset name (in bytes) the server
// accepts, with or without durability configured. The bound exists
// because the durable store's WAL frames each record with a
// length-checked name prefix; enforcing it uniformly at registration
// keeps the API identical whether or not -data-dir is set.
const MaxDatasetName = 4096

// PostResult acknowledges a stored summary (posted or built by ingest).
type PostResult struct {
	Dataset  string `json:"dataset"`
	Instance int    `json:"instance"`
	Kind     string `json:"kind"`
	// Size is the number of retained keys in the stored summary.
	Size int `json:"size"`
	// Pairs is the number of raw pairs consumed; only set by ingest.
	Pairs int64 `json:"pairs,omitempty"`
	// Wire is the wire-format version the posted summary was decoded
	// from (1 = JSON, 2 = binary); only set by summary posts.
	Wire int `json:"wire,omitempty"`
}

// MultiPostResult acknowledges a one-pass multi-instance ingest: one scan
// of a combined (key, instance, value) stream populated every listed
// instance of the dataset.
type MultiPostResult struct {
	Dataset string `json:"dataset"`
	Kind    string `json:"kind"`
	// Instances are the populated instance IDs, in request order.
	Instances []int `json:"instances"`
	// Sizes[i] is the number of retained keys in Instances[i]'s summary.
	Sizes []int `json:"sizes"`
	// Pairs is the total number of raw (key, instance, value) pairs
	// consumed by the single scan.
	Pairs int64 `json:"pairs"`
}

// HealthResult answers GET /healthz: liveness plus the number of
// registered datasets, for load-balancer probes and quick capacity reads.
// WireVersions lists the summary wire-format versions the server speaks,
// so operators (and clients) can probe codec support before posting.
// Engine reports the ingest pipeline's accumulated throughput and
// backpressure counters — richer node-health signal than the liveness
// bit, which multi-node placement and failover will probe. Store
// describes the durability subsystem when the server runs with one
// (summaryd -data-dir); a purely in-memory server omits it.
type HealthResult struct {
	Status       string        `json:"status"`
	Datasets     int           `json:"datasets"`
	WireVersions []int         `json:"wire_versions"`
	Engine       *EngineStatus `json:"engine,omitempty"`
	Store        *StoreStatus  `json:"store,omitempty"`
}

// EngineStatus is the ingest engine's health: the counters every raw
// ingest's pipeline reported through its Stats() seam, accumulated over
// the server's lifetime, plus the configured execution strategy. Set
// ingests are stateless and bypass the engine, so they contribute to
// Ingests only.
type EngineStatus struct {
	// Pairs is the total number of raw pairs pushed through engine
	// pipelines; Batches the shard-worker handoffs (0 under the
	// sequential config, which has no workers).
	Pairs   uint64 `json:"pairs"`
	Batches uint64 `json:"batches"`
	// Stalls counts blocking handoffs against a full shard queue — the
	// backpressure signal; Rejected the arrivals refused by the
	// non-blocking TryPush path.
	Stalls   uint64 `json:"stalls"`
	Rejected uint64 `json:"rejected"`
	// Snapshots counts mid-stream pipeline snapshots (each quiesces the
	// shard workers); Ingests the completed raw-ingest requests.
	Snapshots uint64 `json:"snapshots"`
	Ingests   uint64 `json:"ingests"`
	// Shards and QueueDepth describe the configured execution strategy:
	// effective worker count and per-shard queue capacity in batches
	// (0 = synchronous handoff, no queues).
	Shards     int `json:"shards"`
	QueueDepth int `json:"queue_depth"`
}

// StoreStatus is the durability subsystem's health: the write-ahead log's
// current extent, the last snapshot, and what recovery replayed at boot.
type StoreStatus struct {
	// Dir is the durability directory (summaryd -data-dir).
	Dir string `json:"dir"`
	// WALRecords and WALBytes measure the log written since the last
	// snapshot — the work a crash right now would replay — across all
	// retained segments; WALSegments counts those segment files (the live
	// one included).
	WALRecords  int64 `json:"wal_records"`
	WALBytes    int64 `json:"wal_bytes"`
	WALSegments int64 `json:"wal_segments"`
	// SnapshotEntries is the number of summaries in the snapshot chain on
	// disk (0 when none has been taken yet); SnapshotChain counts the
	// incremental chain files recovery would replay before the WAL.
	SnapshotEntries int64 `json:"snapshot_entries"`
	SnapshotChain   int   `json:"snapshot_chain"`
	// QuarantinedFiles counts files the last recovery could not account
	// for (out-of-manifest segments, unparsable names) and moved to the
	// quarantine/ subdirectory instead of replaying or deleting.
	QuarantinedFiles int `json:"quarantined_files,omitempty"`
	// LastSnapshot is the RFC 3339 time of the live snapshot; empty when
	// none exists.
	LastSnapshot string `json:"last_snapshot,omitempty"`
	// SnapshotError is the most recent snapshot failure, cleared by the
	// next success. A non-empty value with a durable WAL is degraded, not
	// lost: recovery cost grows until snapshots succeed again.
	SnapshotError string `json:"snapshot_error,omitempty"`
	// RecoveredDatasets and RecoveredSummaries count what replay restored
	// when this process opened the store.
	RecoveredDatasets  int   `json:"recovered_datasets"`
	RecoveredSummaries int64 `json:"recovered_summaries"`
	// Fsync reports whether every append is synced to stable storage
	// before being acknowledged.
	Fsync bool `json:"fsync"`
}

// DatasetInfo describes one registered dataset.
type DatasetInfo struct {
	Dataset   string `json:"dataset"`
	Kind      string `json:"kind"`
	Salt      uint64 `json:"salt"`
	Shared    bool   `json:"shared"`
	Instances []int  `json:"instances"`
	Keys      int    `json:"keys"`
}

// Accuracy is the optional error-bar block of a query result: the
// standard error of the estimate it annotates (from the estimator's
// variance bound or an unbiased plug-in variance estimate) and the
// two-sided 95% normal interval half-width (1.96·stderr). Both are 0 for
// an exact answer and omitted when no bound is known for the summary
// kind; StdErr annotates the HT column where a result carries several
// estimators.
type Accuracy struct {
	StdErr float64 `json:"stderr"`
	CI95   float64 `json:"ci95"`
}

// Explain is the optional query-execution report requested with
// explain=1: which stored summaries the estimate consulted and through
// which representation.
type Explain struct {
	// Summaries describes each consulted summary, in instance order.
	Summaries []ExplainSummary `json:"summaries"`
	// EntriesScanned totals the retained entries across the consulted
	// summaries — the work a full scan of the query touched.
	EntriesScanned int `json:"entries_scanned"`
	// BytesTouched totals the wire bytes behind zero-copy views (0 for
	// hydrated summaries, which have no resident wire image).
	BytesTouched int `json:"bytes_touched"`
}

// ExplainSummary describes one consulted summary.
type ExplainSummary struct {
	Instance int    `json:"instance"`
	Kind     string `json:"kind"`
	// Path is the representation queried: "view" (zero-copy over v2 wire
	// bytes) or "hydrated" (map-backed).
	Path string `json:"path"`
	// Entries is the number of retained keys; Bytes the wire length for
	// views (0 when hydrated).
	Entries int `json:"entries"`
	Bytes   int `json:"bytes,omitempty"`
}

// DistinctResult answers q=distinct: the estimated number of distinct
// keys across the queried set summaries, or — for a single bottom-k
// instance — the rank-conditioning distinct estimate of that instance
// (reported in HT with L = 0).
type DistinctResult struct {
	Dataset   string  `json:"dataset"`
	Instances []int   `json:"instances"`
	HT        float64 `json:"ht"`
	L         float64 `json:"l"`
	KeysUsed  int     `json:"keys_used"`
	// Accuracy bounds the HT estimate's standard error when one is known
	// (set summaries: per-key HT independence bound; bottom-k: the
	// k-dependent CV bound).
	Accuracy *Accuracy `json:"accuracy,omitempty"`
	Explain  *Explain  `json:"explain,omitempty"`
}

// DominanceResult answers q=maxdominance: the estimated max-dominance norm
// Σ_h max_i v_i(h) over two PPS summaries.
type DominanceResult struct {
	Dataset   string   `json:"dataset"`
	Instances []int    `json:"instances"`
	HT        float64  `json:"ht"`
	L         float64  `json:"l"`
	KeysUsed  int      `json:"keys_used"`
	Explain   *Explain `json:"explain,omitempty"`
}

// QuantileResult answers q=quantile: the estimated ℓ-th largest value of
// one key across the queried PPS summaries.
type QuantileResult struct {
	Dataset   string `json:"dataset"`
	Instances []int  `json:"instances"`
	Key       uint64 `json:"key"`
	// Index is ℓ, 1-based: 1 is the max, r the min.
	Index int     `json:"index"`
	HT    float64 `json:"ht"`
	// Sampled is the number of queried summaries holding the key.
	Sampled int      `json:"sampled"`
	Explain *Explain `json:"explain,omitempty"`
}

// SumResult answers q=sum: the single-instance subset-sum estimate of a
// weighted summary, or the cardinality estimate of a set summary.
type SumResult struct {
	Dataset  string  `json:"dataset"`
	Instance int     `json:"instance"`
	Sum      float64 `json:"sum"`
	// Accuracy bounds the estimate's standard error when one is known:
	// exact 0 for VarOpt full sums and never-thresholded bottom-k
	// summaries, the unbiased per-key HT variance estimate for PPS, the
	// binomial bound for set cardinalities, est/√(k−2) for bottom-k.
	Accuracy *Accuracy `json:"accuracy,omitempty"`
	Explain  *Explain  `json:"explain,omitempty"`
}

// ErrorResult is the body of every non-2xx response. On wire-format
// negotiation failures (HTTP 415/406) Supported lists the summary wire
// versions the server does speak, so a client can downgrade instead of
// guessing.
type ErrorResult struct {
	Error     string `json:"error"`
	Supported []int  `json:"supported_versions,omitempty"`
}
