package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs/trace"
	"repro/internal/server"
	"repro/pkg/api"
	"repro/pkg/client"
)

func testSummary(t *testing.T) *core.PPSSummary {
	t.Helper()
	in := dataset.Instance{}
	for i := 1; i <= 400; i++ {
		in[dataset.Key(i*2654435761)] = float64(1 + i%37)
	}
	return core.NewSummarizer(2011).SummarizePPSExpectedSize(0, in, 100)
}

// TestClientWireV2AgainstV2Server: a v2-preferring client posts binary,
// the server acknowledges wire 2, the negotiated fetch returns a summary
// with the original query bits, and no fallback happens.
func TestClientWireV2AgainstV2Server(t *testing.T) {
	ts := httptest.NewServer(server.New(server.NewRegistry(), engine.Config{}))
	defer ts.Close()
	sum := testSummary(t)
	c := client.New(ts.URL, ts.Client(), client.WithWireVersion(2))
	ctx := context.Background()

	post, err := c.PostSummary(ctx, "flows", sum)
	if err != nil {
		t.Fatal(err)
	}
	if post.Wire != 2 || post.Size != sum.Len() {
		t.Fatalf("PostResult = %+v, want wire 2, size %d", post, sum.Len())
	}
	if c.WireVersion() != 2 {
		t.Fatalf("WireVersion = %d after a successful v2 post, want 2", c.WireVersion())
	}

	dec, err := c.FetchDecodedSummary(ctx, "flows", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := dec.(*core.PPSSummary)
	if !ok {
		t.Fatalf("decoded %T, want *core.PPSSummary", dec)
	}
	if got.SubsetSum(nil) != sum.SubsetSum(nil) {
		t.Fatalf("fetched sum %v != %v", got.SubsetSum(nil), sum.SubsetSum(nil))
	}

	// FetchSummary stays JSON for compatibility.
	raw, err := c.FetchSummary(ctx, "flows", 0)
	if err != nil {
		t.Fatal(err)
	}
	var head struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(raw, &head); err != nil || head.Version != 1 {
		t.Fatalf("FetchSummary returned non-v1-JSON (version %d, err %v)", head.Version, err)
	}
}

// v1OnlyHandler mimics a pre-v2 summary server: it parses every posted
// body as JSON and answers non-JSON with the given status and error text
// — 415 from a version-negotiating build, or the historical 400 decode
// error from a pre-negotiation build. The transparent fallback must
// handle both.
func v1OnlyHandler(rejectStatus int, rejectError string) (http.Handler, *int) {
	posts := new(int)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/summaries", func(w http.ResponseWriter, r *http.Request) {
		*posts++
		body, _ := io.ReadAll(r.Body)
		var head struct {
			Version int    `json:"version"`
			Kind    string `json:"kind"`
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.Unmarshal(body, &head); err != nil || head.Version != 1 {
			w.WriteHeader(rejectStatus)
			_ = json.NewEncoder(w).Encode(api.ErrorResult{Error: rejectError, Supported: []int{1}})
			return
		}
		w.WriteHeader(http.StatusCreated)
		_ = json.NewEncoder(w).Encode(api.PostResult{Dataset: "flows", Kind: head.Kind, Wire: 1})
	})
	return mux, posts
}

// TestClientFallsBackToV1: against a server that rejects binary posts —
// with 415 (negotiating build) or a 400 decode error (pre-negotiation
// build) — the client retries as v1 JSON transparently, reports the
// downgrade through WireVersion, and — the sticky part — posts v1
// directly from then on.
func TestClientFallsBackToV1(t *testing.T) {
	for _, tc := range []struct {
		name   string
		status int
		errMsg string
	}{
		{"415 negotiating", http.StatusUnsupportedMediaType, "unknown wire version"},
		{"400 pre-negotiation", http.StatusBadRequest, `core: decoding summary: invalid character '\xcb'`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h, posts := v1OnlyHandler(tc.status, tc.errMsg)
			ts := httptest.NewServer(h)
			defer ts.Close()
			sum := testSummary(t)
			c := client.New(ts.URL, ts.Client(), client.WithWireVersion(2))
			ctx := context.Background()

			post, err := c.PostSummary(ctx, "flows", sum)
			if err != nil {
				t.Fatalf("post against v1-only server: %v", err)
			}
			if post.Wire != 1 {
				t.Fatalf("PostResult.Wire = %d, want 1 after fallback", post.Wire)
			}
			if *posts != 2 {
				t.Fatalf("first post took %d requests, want 2 (v2 attempt + v1 retry)", *posts)
			}
			if c.WireVersion() != 1 {
				t.Fatalf("WireVersion = %d after fallback, want 1", c.WireVersion())
			}

			if _, err := c.PostSummary(ctx, "flows", sum); err != nil {
				t.Fatal(err)
			}
			if *posts != 3 {
				t.Fatalf("second post took %d total requests, want 3 (fallback is sticky)", *posts)
			}
		})
	}
}

// TestClientNoRetryOnUnrelated400: a 400 that is not a decode failure
// (oversized body, missing parameter) must surface as-is — no doomed v1
// re-upload, no downgrade.
func TestClientNoRetryOnUnrelated400(t *testing.T) {
	h, posts := v1OnlyHandler(http.StatusBadRequest, "server: reading summary body: http: request body too large")
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := client.New(ts.URL, ts.Client(), client.WithWireVersion(2))

	_, err := c.PostSummary(context.Background(), "flows", testSummary(t))
	var se *client.StatusError
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
		t.Fatalf("got %v, want the original 400", err)
	}
	if *posts != 1 {
		t.Fatalf("took %d requests, want 1 (no retry on a non-format 400)", *posts)
	}
	if c.WireVersion() != 2 {
		t.Fatalf("WireVersion = %d, want 2 (no downgrade)", c.WireVersion())
	}
}

// TestClientRawFutureVersionBytes: pre-encoded bytes of an unregistered
// binary version are posted under their own x-summary-v<N> content type,
// so a negotiating server answers the contractual 415 with the supported
// list instead of a parse-binary-as-JSON 400.
func TestClientRawFutureVersionBytes(t *testing.T) {
	ts := httptest.NewServer(server.New(server.NewRegistry(), engine.Config{}))
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())
	_, err := c.PostSummary(context.Background(), "flows", []byte{0xCB, 0x53, 0x07, 0x01, 0x00})
	var se *client.StatusError
	if !errors.As(err, &se) || se.Status != http.StatusUnsupportedMediaType {
		t.Fatalf("got %v, want 415", err)
	}
	if len(se.Supported) == 0 {
		t.Fatalf("415 carried no supported versions: %+v", se)
	}
}

// TestClientNoFallbackOnRealErrors: a rejection that is not about the
// wire format (409 incompatible) must surface as-is without downgrading.
func TestClientNoFallbackOnRealErrors(t *testing.T) {
	ts := httptest.NewServer(server.New(server.NewRegistry(), engine.Config{}))
	defer ts.Close()
	sum := testSummary(t)
	c := client.New(ts.URL, ts.Client(), client.WithWireVersion(2))
	ctx := context.Background()
	if _, err := c.PostSummary(ctx, "flows", sum); err != nil {
		t.Fatal(err)
	}
	// A different salt conflicts with the stored dataset: 409.
	other := core.NewSummarizer(999).SummarizePPS(1, dataset.Instance{1: 5}, 2)
	_, err := c.PostSummary(ctx, "flows", other)
	var se *client.StatusError
	if !errors.As(err, &se) || se.Status != http.StatusConflict {
		t.Fatalf("conflicting post: got %v, want 409 StatusError", err)
	}
	if c.WireVersion() != 2 {
		t.Fatalf("WireVersion = %d after a 409, want 2 (no downgrade)", c.WireVersion())
	}
}

// TestClientFallbackSharesCorrelation: the v2 attempt and its v1
// fallback retry are one logical operation, so they must arrive with the
// same client-minted X-Request-ID and — when the caller's context
// carries a span — the same traceparent, keeping the pair correlated in
// server logs and traces.
func TestClientFallbackSharesCorrelation(t *testing.T) {
	h, _ := v1OnlyHandler(http.StatusUnsupportedMediaType, "unknown wire version")
	var rids, parents []string
	capture := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rids = append(rids, r.Header.Get("X-Request-ID"))
		parents = append(parents, r.Header.Get("traceparent"))
		h.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(capture)
	defer ts.Close()

	tr := trace.New(4)
	sp := tr.StartSpan("client.post", trace.SpanContext{})
	ctx := trace.ContextWithSpan(context.Background(), sp)

	c := client.New(ts.URL, ts.Client(), client.WithWireVersion(2))
	if _, err := c.PostSummary(ctx, "flows", testSummary(t)); err != nil {
		t.Fatalf("post against v1-only server: %v", err)
	}
	sp.Finish()

	if len(rids) != 2 {
		t.Fatalf("saw %d requests, want 2 (v2 attempt + v1 retry)", len(rids))
	}
	if rids[0] == "" || rids[0] != rids[1] {
		t.Fatalf("X-Request-ID not shared across attempts: %q vs %q", rids[0], rids[1])
	}
	want := sp.Context().Traceparent()
	if parents[0] != want || parents[1] != want {
		t.Fatalf("traceparent not shared across attempts: %q / %q, want %q",
			parents[0], parents[1], want)
	}

	// A second operation must NOT reuse the first one's request ID.
	if _, err := c.PostSummary(ctx, "flows", testSummary(t)); err != nil {
		t.Fatal(err)
	}
	if rids[2] == rids[0] {
		t.Fatalf("distinct operations share request ID %q", rids[2])
	}
}
