// Package client is a thin Go client for the summary server (summaryd).
//
// It speaks the v1 HTTP API: post summaries in the core JSON wire format,
// ingest raw CSV/ndjson pair streams (summarized server-side), and run
// distinct / max-dominance / quantile / sum queries over any stored
// subset. Response types live in pkg/api and are shared with
// internal/server, so client and server cannot drift.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/pkg/api"
)

// Client talks to one summaryd instance.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the server at base (e.g. "http://127.0.0.1:8080").
// A nil http.Client uses http.DefaultClient.
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// BaseURL returns the server URL the client was built with.
func (c *Client) BaseURL() string { return c.base }

// do issues a request and decodes the JSON response into out, mapping
// non-2xx responses to errors carrying the server's message.
func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		var e api.ErrorResult
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("client: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("client: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

func (c *Client) get(ctx context.Context, path string, q url.Values, out any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) post(ctx context.Context, path string, q url.Values, contentType string, body io.Reader, out any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	return c.do(req, out)
}

// Health probes GET /healthz, returning the server's liveness payload
// (status plus registered-dataset count).
func (c *Client) Health(ctx context.Context) (api.HealthResult, error) {
	var out api.HealthResult
	err := c.get(ctx, "/healthz", nil, &out)
	return out, err
}

// Datasets lists the registered datasets.
func (c *Client) Datasets(ctx context.Context) ([]api.DatasetInfo, error) {
	var out []api.DatasetInfo
	err := c.get(ctx, "/v1/datasets", nil, &out)
	return out, err
}

// PostSummary stores a summary under the named dataset. The summary is any
// core summary value (*core.PPSSummary, *core.SetSummary,
// *core.BottomKSummary) or pre-encoded wire JSON as []byte /
// json.RawMessage.
func (c *Client) PostSummary(ctx context.Context, dataset string, summary any) (api.PostResult, error) {
	var body []byte
	switch v := summary.(type) {
	case []byte:
		body = v
	case json.RawMessage:
		body = v
	default:
		var err error
		if body, err = json.Marshal(summary); err != nil {
			return api.PostResult{}, fmt.Errorf("client: encoding summary: %w", err)
		}
	}
	q := url.Values{"dataset": {dataset}}
	var out api.PostResult
	err := c.post(ctx, "/v1/summaries", q, "application/json", bytes.NewReader(body), &out)
	return out, err
}

// FetchSummary retrieves one stored summary in wire form; decode it with
// core.DecodeSummary.
func (c *Client) FetchSummary(ctx context.Context, dataset string, instance int) (json.RawMessage, error) {
	q := url.Values{"dataset": {dataset}, "instance": {strconv.Itoa(instance)}}
	var out json.RawMessage
	err := c.get(ctx, "/v1/summaries", q, &out)
	return out, err
}

// IngestOptions parameterizes a raw-stream ingest. Exactly the fields of
// the selected kind are consulted: Tau for "pps", K and Family for
// "bottomk", P for "set".
type IngestOptions struct {
	Dataset  string
	Instance int
	// Kind is "pps", "bottomk", or "set".
	Kind string
	// Format is "csv" or "ndjson" (default ndjson).
	Format string
	// Salt and Shared define the randomization when the dataset does not
	// exist yet; an existing dataset pins both.
	Salt    uint64
	SaltSet bool
	Shared  bool
	Tau     float64
	K       int
	Family  string
	P       float64
}

// Ingest streams a raw pair stream to the server, which summarizes it on
// arrival and registers the result.
func (c *Client) Ingest(ctx context.Context, opts IngestOptions, stream io.Reader) (api.PostResult, error) {
	q := url.Values{
		"dataset":  {opts.Dataset},
		"instance": {strconv.Itoa(opts.Instance)},
		"kind":     {opts.Kind},
	}
	if opts.Format != "" {
		q.Set("format", opts.Format)
	}
	if opts.SaltSet {
		q.Set("salt", strconv.FormatUint(opts.Salt, 10))
		q.Set("shared", strconv.FormatBool(opts.Shared))
	}
	switch opts.Kind {
	case "pps":
		q.Set("tau", strconv.FormatFloat(opts.Tau, 'g', -1, 64))
	case "bottomk":
		q.Set("k", strconv.Itoa(opts.K))
		if opts.Family != "" {
			q.Set("family", opts.Family)
		}
	case "set":
		q.Set("p", strconv.FormatFloat(opts.P, 'g', -1, 64))
	}
	ct := "application/x-ndjson"
	if opts.Format == "csv" {
		ct = "text/csv"
	}
	var out api.PostResult
	err := c.post(ctx, "/v1/ingest", q, ct, stream, &out)
	return out, err
}

// MultiIngestOptions parameterizes a one-pass multi-instance ingest.
// Exactly the fields of the selected kind are consulted: Taus for "pps",
// K and Family for "bottomk".
type MultiIngestOptions struct {
	Dataset string
	// Instances lists the instance IDs the combined stream populates; the
	// body's instance column must only use these IDs.
	Instances []int
	// Kind is "pps" or "bottomk".
	Kind string
	// Format is "csv" or "ndjson" (default ndjson).
	Format string
	// Salt and Shared define the randomization when the dataset does not
	// exist yet; an existing dataset pins both.
	Salt    uint64
	SaltSet bool
	Shared  bool
	// Taus holds the PPS thresholds: one value shared by every instance,
	// or one per instance.
	Taus   []float64
	K      int
	Family string
}

// IngestMulti streams a combined (key, instance, value) stream to the
// server, which summarizes every listed instance in one scan through the
// engine's multi-instance pipeline and registers the results.
func (c *Client) IngestMulti(ctx context.Context, opts MultiIngestOptions, stream io.Reader) (api.MultiPostResult, error) {
	q := url.Values{
		"dataset":   {opts.Dataset},
		"instances": {instanceList(opts.Instances)},
		"kind":      {opts.Kind},
	}
	if opts.Format != "" {
		q.Set("format", opts.Format)
	}
	if opts.SaltSet {
		q.Set("salt", strconv.FormatUint(opts.Salt, 10))
		q.Set("shared", strconv.FormatBool(opts.Shared))
	}
	switch opts.Kind {
	case "pps":
		taus := make([]string, len(opts.Taus))
		for i, tau := range opts.Taus {
			taus[i] = strconv.FormatFloat(tau, 'g', -1, 64)
		}
		q.Set("tau", strings.Join(taus, ","))
	case "bottomk":
		q.Set("k", strconv.Itoa(opts.K))
		if opts.Family != "" {
			q.Set("family", opts.Family)
		}
	}
	ct := "application/x-ndjson"
	if opts.Format == "csv" {
		ct = "text/csv"
	}
	var out api.MultiPostResult
	err := c.post(ctx, "/v1/ingest/multi", q, ct, stream, &out)
	return out, err
}

func instanceList(instances []int) string {
	parts := make([]string, len(instances))
	for i, n := range instances {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ",")
}

// Distinct estimates the number of distinct keys across the given set-
// summary instances (all stored instances when none are given).
func (c *Client) Distinct(ctx context.Context, dataset string, instances ...int) (api.DistinctResult, error) {
	q := url.Values{"dataset": {dataset}, "q": {"distinct"}}
	if len(instances) > 0 {
		q.Set("instances", instanceList(instances))
	}
	var out api.DistinctResult
	err := c.get(ctx, "/v1/query", q, &out)
	return out, err
}

// MaxDominance estimates Σ_h max(v_i(h), v_j(h)) over two stored PPS
// summaries.
func (c *Client) MaxDominance(ctx context.Context, dataset string, i, j int) (api.DominanceResult, error) {
	q := url.Values{
		"dataset":   {dataset},
		"q":         {"maxdominance"},
		"instances": {instanceList([]int{i, j})},
	}
	var out api.DominanceResult
	err := c.get(ctx, "/v1/query", q, &out)
	return out, err
}

// Quantile estimates the l-th largest value (1-based; 1 = max) of one key
// across the given PPS-summary instances (all stored instances when none
// are given).
func (c *Client) Quantile(ctx context.Context, dataset string, key uint64, l int, instances ...int) (api.QuantileResult, error) {
	q := url.Values{
		"dataset": {dataset},
		"q":       {"quantile"},
		"key":     {strconv.FormatUint(key, 10)},
		"l":       {strconv.Itoa(l)},
	}
	if len(instances) > 0 {
		q.Set("instances", instanceList(instances))
	}
	var out api.QuantileResult
	err := c.get(ctx, "/v1/query", q, &out)
	return out, err
}

// Sum estimates one stored instance's total: the subset-sum estimate of a
// weighted summary, or the cardinality estimate of a set summary.
func (c *Client) Sum(ctx context.Context, dataset string, instance int) (api.SumResult, error) {
	q := url.Values{
		"dataset":   {dataset},
		"q":         {"sum"},
		"instances": {strconv.Itoa(instance)},
	}
	var out api.SumResult
	err := c.get(ctx, "/v1/query", q, &out)
	return out, err
}
