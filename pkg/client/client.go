// Package client is a thin Go client for the summary server (summaryd).
//
// It speaks the v1 HTTP API: post summaries in either summary wire format
// (v1 JSON by default; opt into the compact v2 binary format with
// WithWireVersion(2)), ingest raw CSV/ndjson pair streams (summarized
// server-side), and run distinct / max-dominance / quantile / sum queries
// over any stored subset. Response types live in pkg/api and are shared
// with internal/server, so client and server cannot drift.
//
// Version negotiation is transparent: a v2-configured client that meets a
// server without v2 support falls back to v1 on the first rejected post
// and stays on v1 for the rest of its life — new clients work against old
// servers with one extra round trip, total.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs/trace"
	"repro/pkg/api"
)

// Client talks to one summaryd instance.
type Client struct {
	base string
	hc   *http.Client
	// wire is the preferred summary wire version for posts and fetches
	// (0 or 1 = v1 JSON).
	wire int
	// fellBack flips to true the first time the server rejects the
	// preferred version; every later exchange goes straight to v1.
	fellBack atomic.Bool
}

// Option configures a Client at construction.
type Option func(*Client)

// WithWireVersion selects the summary wire format the client prefers when
// posting and fetching summaries: 1 (the default) is the JSON format, 2
// the compact binary format. The version must be registered in this
// build (core.SupportedWireVersions); unknown versions panic, like an
// invalid engine config — a construction-time misconfiguration. Servers
// that do not speak the preferred version are handled transparently: see
// the package comment on fallback.
func WithWireVersion(v int) Option {
	if _, err := core.CodecByVersion(v); err != nil {
		panic(err)
	}
	return func(c *Client) { c.wire = v }
}

// New returns a client for the server at base (e.g. "http://127.0.0.1:8080").
// A nil http.Client uses http.DefaultClient.
func New(base string, hc *http.Client, opts ...Option) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	c := &Client{base: strings.TrimRight(base, "/"), hc: hc, wire: 1}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// WireVersion reports the wire version the client currently uses for
// summary posts: the configured preference, or 1 after a fallback.
func (c *Client) WireVersion() int {
	if c.wire <= 1 || c.fellBack.Load() {
		return 1
	}
	return c.wire
}

// BaseURL returns the server URL the client was built with.
func (c *Client) BaseURL() string { return c.base }

// StatusError is the error the client returns for a non-2xx response. It
// carries the HTTP status code and, on wire-format negotiation failures,
// the versions the server advertised — what the transparent fallback (and
// any caller-side negotiation) dispatches on.
type StatusError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's error text (or the raw body when the server
	// sent no structured error).
	Message string
	// Supported lists the wire versions the server speaks, when it said.
	Supported []int
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("client: %s (HTTP %d)", e.Message, e.Status)
}

// do issues a request and decodes the JSON response into out, mapping
// non-2xx responses to *StatusError carrying the server's message.
func (c *Client) do(req *http.Request, out any) error {
	body, _, err := c.doRaw(req)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// doRaw issues a request and returns the raw 2xx body and its content
// type, mapping non-2xx responses to *StatusError.
func (c *Client) doRaw(req *http.Request) (body []byte, contentType string, err error) {
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		se := &StatusError{Status: resp.StatusCode, Message: strings.TrimSpace(string(body))}
		var e api.ErrorResult
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			se.Message, se.Supported = e.Error, e.Supported
		}
		return nil, "", se
	}
	return body, resp.Header.Get("Content-Type"), nil
}

// injectTrace propagates a span carried by ctx (trace.ContextWithSpan)
// onto the outgoing request as a W3C traceparent header, so a traced
// server continues the caller's trace instead of minting a fresh one.
// Without a span in the context this is a no-op.
func injectTrace(ctx context.Context, req *http.Request) {
	if sp := trace.SpanFromContext(ctx); sp != nil {
		req.Header.Set("traceparent", sp.Context().Traceparent())
	}
}

func (c *Client) get(ctx context.Context, path string, q url.Values, out any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	// Every structured endpoint answers JSON; saying so keeps a server
	// running a non-JSON default wire format (-wire 2) from ever sending
	// binary where a JSON result type is expected.
	req.Header.Set("Accept", "application/json")
	injectTrace(ctx, req)
	return c.do(req, out)
}

func (c *Client) post(ctx context.Context, path string, q url.Values, contentType string, body io.Reader, out any) error {
	return c.postHdr(ctx, path, q, contentType, nil, body, out)
}

// postHdr is post with extra headers: the summary-post path uses it to
// thread one X-Request-ID through the preferred-wire attempt and its v1
// fallback retry.
func (c *Client) postHdr(ctx context.Context, path string, q url.Values, contentType string, hdr http.Header, body io.Reader, out any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, body)
	if err != nil {
		return err
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	req.Header.Set("Content-Type", contentType)
	injectTrace(ctx, req)
	return c.do(req, out)
}

// Health probes GET /healthz, returning the server's liveness payload:
// status, registered-dataset count, supported wire versions, the ingest
// engine's accumulated throughput/backpressure counters (Engine), and —
// when the server runs with a durability directory — the store's WAL and
// snapshot state (Store).
func (c *Client) Health(ctx context.Context) (api.HealthResult, error) {
	var out api.HealthResult
	err := c.get(ctx, "/healthz", nil, &out)
	return out, err
}

// Datasets lists the registered datasets.
func (c *Client) Datasets(ctx context.Context) ([]api.DatasetInfo, error) {
	var out []api.DatasetInfo
	err := c.get(ctx, "/v1/datasets", nil, &out)
	return out, err
}

// PostSummary stores a summary under the named dataset. The summary is any
// core summary value (*core.PPSSummary, *core.SetSummary,
// *core.BottomKSummary) or pre-encoded wire bytes ([]byte /
// json.RawMessage, either wire format — the content type is sniffed).
//
// A client configured with WithWireVersion(2) encodes core summary values
// in the binary format. When the server rejects it as unsupported — 415
// from a negotiating server, 400 from a pre-negotiation server that
// failed to parse binary as JSON — the post is retried once as v1 JSON,
// and a successful retry pins the client to v1 so later posts skip the
// doomed attempt.
//
// All attempts of one PostSummary call carry the same client-minted
// X-Request-ID (and, when the context carries a span, the same
// traceparent), so a fallback retry correlates with the attempt it
// replaces in server logs and traces.
func (c *Client) PostSummary(ctx context.Context, dataset string, summary any) (api.PostResult, error) {
	q := url.Values{"dataset": {dataset}}
	hdr := http.Header{"X-Request-Id": {newRequestID()}}
	var out api.PostResult

	// Pre-encoded bytes pass through untranscoded.
	if raw, ok := rawWire(summary); ok {
		err := c.postHdr(ctx, "/v1/summaries", q, sniffContentType(raw), hdr, bytes.NewReader(raw), &out)
		return out, err
	}

	var triedPreferred bool
	if v := c.WireVersion(); v > 1 {
		if sum, ok := summary.(core.Summary); ok {
			codec, err := core.CodecByVersion(v)
			if err != nil {
				return out, err
			}
			body, err := codec.Encode(sum)
			if err != nil {
				return out, fmt.Errorf("client: encoding summary: %w", err)
			}
			err = c.postHdr(ctx, "/v1/summaries", q, codec.ContentType(), hdr, bytes.NewReader(body), &out)
			if err == nil || !wireUnsupported(err) {
				return out, err
			}
			triedPreferred = true // fall through to a one-time v1 retry
		}
	}

	body, err := json.Marshal(summary)
	if err != nil {
		return out, fmt.Errorf("client: encoding summary: %w", err)
	}
	err = c.postHdr(ctx, "/v1/summaries", q, "application/json", hdr, bytes.NewReader(body), &out)
	if triedPreferred && err == nil {
		// The v1 retry succeeded where the preferred version was refused:
		// the rejection really was about the format (not, say, a bad
		// dataset), so pin v1 and skip the doomed attempt from now on.
		c.fellBack.Store(true)
	}
	return out, err
}

// rawWire extracts pre-encoded wire bytes from a PostSummary argument.
func rawWire(summary any) ([]byte, bool) {
	switch v := summary.(type) {
	case []byte:
		return v, true
	case json.RawMessage:
		return v, true
	}
	return nil, false
}

// sniffContentType types pre-encoded wire bytes by their leading bytes:
// the binary magic marks a binary payload — named by its version even
// when this build does not register it, so the server answers the
// contractual 415 with supported_versions instead of a confusing
// parse-binary-as-JSON 400 — and anything else is JSON.
func sniffContentType(raw []byte) string {
	if v, ok := core.SniffWireVersion(raw); ok && v != 1 {
		return fmt.Sprintf("application/x-summary-v%d", v)
	}
	return "application/json"
}

// wireUnsupported reports whether an error says the server cannot parse
// the posted wire format: 415 from a version-negotiating server, or a
// 400 decode failure from a pre-negotiation server that tried to parse
// binary as JSON. Other 400s (oversized body, missing parameters) would
// fail a v1 retry identically, so they don't trigger the fallback — the
// real error surfaces instead of being masked by a doomed re-upload.
func wireUnsupported(err error) bool {
	var se *StatusError
	if !errors.As(err, &se) {
		return false
	}
	if se.Status == http.StatusUnsupportedMediaType {
		return true
	}
	return se.Status == http.StatusBadRequest && strings.Contains(se.Message, "decoding")
}

// FetchSummary retrieves one stored summary in v1 JSON wire form; decode
// it with core.DecodeSummary. FetchDecodedSummary negotiates the
// configured wire version and decodes in one step.
func (c *Client) FetchSummary(ctx context.Context, dataset string, instance int) (json.RawMessage, error) {
	q := url.Values{"dataset": {dataset}, "instance": {strconv.Itoa(instance)}}
	var out json.RawMessage
	err := c.get(ctx, "/v1/summaries", q, &out)
	return out, err
}

// FetchDecodedSummary retrieves one stored summary and decodes it,
// negotiating the wire format through Accept: the client's preferred
// version first with JSON as the universal fallback, so old servers —
// which ignore Accept and answer JSON — work without a second round trip.
func (c *Client) FetchDecodedSummary(ctx context.Context, dataset string, instance int) (core.Summary, error) {
	q := url.Values{"dataset": {dataset}, "instance": {strconv.Itoa(instance)}}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/summaries?"+q.Encode(), nil)
	if err != nil {
		return nil, err
	}
	accept := "application/json"
	if v := c.WireVersion(); v > 1 {
		if codec, err := core.CodecByVersion(v); err == nil {
			accept = codec.ContentType() + ", application/json;q=0.5"
		}
	}
	req.Header.Set("Accept", accept)
	injectTrace(ctx, req)
	body, _, err := c.doRaw(req)
	if err != nil {
		return nil, err
	}
	return core.DecodeSummary(body)
}

// newRequestID mints a client-side request ID: short, printable, and
// unique enough to correlate the at-most-two attempts of a single post.
func newRequestID() string {
	return "c-" + strconv.FormatUint(rand.Uint64(), 36)
}

// IngestOptions parameterizes a raw-stream ingest. Exactly the fields of
// the selected kind are consulted: Tau for "pps", K and Family for
// "bottomk", P for "set", K for "varopt".
type IngestOptions struct {
	Dataset  string
	Instance int
	// Kind is "pps", "bottomk", "set", or "varopt".
	Kind string
	// Format is "csv" or "ndjson" (default ndjson).
	Format string
	// Salt and Shared define the randomization when the dataset does not
	// exist yet; an existing dataset pins both.
	Salt    uint64
	SaltSet bool
	Shared  bool
	Tau     float64
	K       int
	Family  string
	P       float64
}

// Ingest streams a raw pair stream to the server, which summarizes it on
// arrival and registers the result.
func (c *Client) Ingest(ctx context.Context, opts IngestOptions, stream io.Reader) (api.PostResult, error) {
	q := url.Values{
		"dataset":  {opts.Dataset},
		"instance": {strconv.Itoa(opts.Instance)},
		"kind":     {opts.Kind},
	}
	if opts.Format != "" {
		q.Set("format", opts.Format)
	}
	if opts.SaltSet {
		q.Set("salt", strconv.FormatUint(opts.Salt, 10))
		q.Set("shared", strconv.FormatBool(opts.Shared))
	}
	switch opts.Kind {
	case "pps":
		q.Set("tau", strconv.FormatFloat(opts.Tau, 'g', -1, 64))
	case "bottomk":
		q.Set("k", strconv.Itoa(opts.K))
		if opts.Family != "" {
			q.Set("family", opts.Family)
		}
	case "set":
		q.Set("p", strconv.FormatFloat(opts.P, 'g', -1, 64))
	case "varopt":
		q.Set("k", strconv.Itoa(opts.K))
	}
	ct := "application/x-ndjson"
	if opts.Format == "csv" {
		ct = "text/csv"
	}
	var out api.PostResult
	err := c.post(ctx, "/v1/ingest", q, ct, stream, &out)
	return out, err
}

// MultiIngestOptions parameterizes a one-pass multi-instance ingest.
// Exactly the fields of the selected kind are consulted: Taus for "pps",
// K and Family for "bottomk".
type MultiIngestOptions struct {
	Dataset string
	// Instances lists the instance IDs the combined stream populates; the
	// body's instance column must only use these IDs.
	Instances []int
	// Kind is "pps" or "bottomk".
	Kind string
	// Format is "csv" or "ndjson" (default ndjson).
	Format string
	// Salt and Shared define the randomization when the dataset does not
	// exist yet; an existing dataset pins both.
	Salt    uint64
	SaltSet bool
	Shared  bool
	// Taus holds the PPS thresholds: one value shared by every instance,
	// or one per instance.
	Taus   []float64
	K      int
	Family string
}

// IngestMulti streams a combined (key, instance, value) stream to the
// server, which summarizes every listed instance in one scan through the
// engine's multi-instance pipeline and registers the results.
func (c *Client) IngestMulti(ctx context.Context, opts MultiIngestOptions, stream io.Reader) (api.MultiPostResult, error) {
	q := url.Values{
		"dataset":   {opts.Dataset},
		"instances": {instanceList(opts.Instances)},
		"kind":      {opts.Kind},
	}
	if opts.Format != "" {
		q.Set("format", opts.Format)
	}
	if opts.SaltSet {
		q.Set("salt", strconv.FormatUint(opts.Salt, 10))
		q.Set("shared", strconv.FormatBool(opts.Shared))
	}
	switch opts.Kind {
	case "pps":
		taus := make([]string, len(opts.Taus))
		for i, tau := range opts.Taus {
			taus[i] = strconv.FormatFloat(tau, 'g', -1, 64)
		}
		q.Set("tau", strings.Join(taus, ","))
	case "bottomk":
		q.Set("k", strconv.Itoa(opts.K))
		if opts.Family != "" {
			q.Set("family", opts.Family)
		}
	}
	ct := "application/x-ndjson"
	if opts.Format == "csv" {
		ct = "text/csv"
	}
	var out api.MultiPostResult
	err := c.post(ctx, "/v1/ingest/multi", q, ct, stream, &out)
	return out, err
}

func instanceList(instances []int) string {
	parts := make([]string, len(instances))
	for i, n := range instances {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ",")
}

// Distinct estimates the number of distinct keys across the given set-
// summary instances (all stored instances when none are given).
func (c *Client) Distinct(ctx context.Context, dataset string, instances ...int) (api.DistinctResult, error) {
	q := url.Values{"dataset": {dataset}, "q": {"distinct"}}
	if len(instances) > 0 {
		q.Set("instances", instanceList(instances))
	}
	var out api.DistinctResult
	err := c.get(ctx, "/v1/query", q, &out)
	return out, err
}

// MaxDominance estimates Σ_h max(v_i(h), v_j(h)) over two stored PPS
// summaries.
func (c *Client) MaxDominance(ctx context.Context, dataset string, i, j int) (api.DominanceResult, error) {
	q := url.Values{
		"dataset":   {dataset},
		"q":         {"maxdominance"},
		"instances": {instanceList([]int{i, j})},
	}
	var out api.DominanceResult
	err := c.get(ctx, "/v1/query", q, &out)
	return out, err
}

// Quantile estimates the l-th largest value (1-based; 1 = max) of one key
// across the given PPS-summary instances (all stored instances when none
// are given).
func (c *Client) Quantile(ctx context.Context, dataset string, key uint64, l int, instances ...int) (api.QuantileResult, error) {
	q := url.Values{
		"dataset": {dataset},
		"q":       {"quantile"},
		"key":     {strconv.FormatUint(key, 10)},
		"l":       {strconv.Itoa(l)},
	}
	if len(instances) > 0 {
		q.Set("instances", instanceList(instances))
	}
	var out api.QuantileResult
	err := c.get(ctx, "/v1/query", q, &out)
	return out, err
}

// Sum estimates one stored instance's total: the subset-sum estimate of a
// weighted summary, or the cardinality estimate of a set summary.
func (c *Client) Sum(ctx context.Context, dataset string, instance int) (api.SumResult, error) {
	q := url.Values{
		"dataset":   {dataset},
		"q":         {"sum"},
		"instances": {strconv.Itoa(instance)},
	}
	var out api.SumResult
	err := c.get(ctx, "/v1/query", q, &out)
	return out, err
}
