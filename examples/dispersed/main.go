// The dispersed-data loop end to end: summarize at the edge, query
// anywhere.
//
// Three simulated edge sites each hold one instance of a shared key
// universe (think: per-site flow logs). No site ever ships its raw data.
// Instead:
//
//   - site 0 summarizes locally and POSTs the JSON wire-format summary;
//   - site 1 streams its raw pairs as ndjson to the server's ingest
//     endpoint, which summarizes on arrival through the engine pipeline;
//   - site 2 does the same with CSV.
//
// A querying party then asks the server for multi-instance estimates over
// the union — distinct keys, max-dominance norm, a per-key quantile — and
// this program verifies the answers are bit-identical to running the
// estimators in-process on the same summaries: the server adds transport
// and storage, never approximation.
//
// The final act exercises the engine's ONE-PASS multi-instance pipeline:
// the three sites' streams are combined into a single (key, instance,
// value) stream and summarized with one scan — in-process through
// core.SummarizeMultiPPSWith (async sharded engine) and over HTTP through
// POST /v1/ingest/multi — and the program asserts every resulting summary
// is bit-identical to the per-instance passes, for independent and for
// coordinated (shared-seed) randomization.
//
// Run with: go run ./examples/dispersed
package main

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/randx"
	"repro/internal/sampling"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/xhash"
	"repro/pkg/client"
)

const (
	salt       = 2011
	sharedKeys = 1200
	uniqueKeys = 600
	expectedK  = 400 // expected PPS summary size per site
	setP       = 0.3 // set-sampling probability per site
	varoptK    = 400 // VarOpt_k reservoir capacity per site
)

func main() {
	sites := makeSites()

	// A summary server, as summaryd would run it (sequential ingest; pass
	// engine.Config{Parallel: true, Shards: n} for the sharded pipeline —
	// the stored summaries are identical either way).
	reg := server.NewRegistry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go func() { _ = http.Serve(ln, server.New(reg, engine.Config{})) }()
	defer ln.Close()

	ctx := context.Background()
	c := client.New("http://"+ln.Addr().String(), nil)
	hr, err := c.Health(ctx)
	check(err)
	fmt.Printf("summary server listening on %s (healthz: %s, %d datasets)\n\n",
		ln.Addr(), hr.Status, hr.Datasets)

	// --- summarize at the edge -----------------------------------------
	summ := core.NewSummarizer(salt)
	taus := make([]float64, len(sites))
	for i, in := range sites {
		taus[i] = sampling.TauForExpectedSize(in, expectedK)
	}

	// Site 0: summarize locally, post the wire-format summaries.
	pps0 := summ.SummarizePPS(0, sites[0], taus[0])
	post, err := c.PostSummary(ctx, "flows", pps0)
	check(err)
	fmt.Printf("site 0: POST /v1/summaries            pps summary, %d keys\n", post.Size)
	set0 := summ.SummarizeSet(0, members(sites[0]), setP)
	_, err = c.PostSummary(ctx, "actives", set0)
	check(err)

	// Site 1: ship the raw stream as ndjson; the server summarizes it.
	post, err = c.Ingest(ctx, client.IngestOptions{
		Dataset: "flows", Instance: 1, Kind: "pps", Format: "ndjson",
		Salt: salt, SaltSet: true, Tau: taus[1],
	}, bytes.NewReader(ndjsonBody(sites[1])))
	check(err)
	fmt.Printf("site 1: POST /v1/ingest (ndjson)      %d pairs -> %d keys\n", post.Pairs, post.Size)
	_, err = c.Ingest(ctx, client.IngestOptions{
		Dataset: "actives", Instance: 1, Kind: "set", Format: "ndjson",
		Salt: salt, SaltSet: true, P: setP,
	}, bytes.NewReader(ndjsonBody(sites[1])))
	check(err)

	// Site 2: the same over CSV.
	post, err = c.Ingest(ctx, client.IngestOptions{
		Dataset: "flows", Instance: 2, Kind: "pps", Format: "csv",
		Salt: salt, SaltSet: true, Tau: taus[2],
	}, bytes.NewReader(csvBody(sites[2])))
	check(err)
	fmt.Printf("site 2: POST /v1/ingest (csv)         %d pairs -> %d keys\n", post.Pairs, post.Size)
	_, err = c.Ingest(ctx, client.IngestOptions{
		Dataset: "actives", Instance: 2, Kind: "set", Format: "csv",
		Salt: salt, SaltSet: true, P: setP,
	}, bytes.NewReader(csvBody(sites[2])))
	check(err)

	// The ingest traffic above shows up in /healthz's engine block: the
	// server folds every pipeline's final counters into running totals,
	// so operators read throughput and backpressure without /metrics.
	hr, err = c.Health(ctx)
	check(err)
	fmt.Printf("engine health: %d pairs across %d ingests (stalls=%d, rejected=%d)\n\n",
		hr.Engine.Pairs, hr.Engine.Ingests, hr.Engine.Stalls, hr.Engine.Rejected)

	// --- the same summaries, built in-process --------------------------
	// The ingest path must reproduce local summarization exactly: ranks
	// depend only on (salt, key, value), never on where sampling ran.
	ppsLocal := []*core.PPSSummary{
		pps0,
		summ.SummarizePPS(1, sites[1], taus[1]),
		summ.SummarizePPS(2, sites[2], taus[2]),
	}
	setLocal := []*core.SetSummary{
		set0,
		summ.SummarizeSet(1, members(sites[1]), setP),
		summ.SummarizeSet(2, members(sites[2]), setP),
	}

	// --- query the union ------------------------------------------------
	hot, truthQ := hottestSharedKey(sites)
	fmt.Printf("\nquerying the union of all three sites:\n\n")
	fmt.Printf("%-34s %14s %14s %14s\n", "query", "HT", "L", "truth")

	srvD, err := c.Distinct(ctx, "actives")
	check(err)
	locD, err := core.DistinctCountMulti(setLocal, nil)
	check(err)
	mustEqual("distinct", srvD.HT, locD.HT)
	mustEqual("distinct", srvD.L, locD.L)
	fmt.Printf("%-34s %14.6g %14.6g %14d\n",
		"distinct keys (3 set summaries)", srvD.HT, srvD.L, unionSize(sites))

	srvM, err := c.MaxDominance(ctx, "flows", 0, 1)
	check(err)
	locM, err := core.MaxDominance(ppsLocal[0], ppsLocal[1], nil)
	check(err)
	mustEqual("maxdominance", srvM.HT, locM.HT)
	mustEqual("maxdominance", srvM.L, locM.L)
	fmt.Printf("%-34s %14.6g %14.6g %14.6g\n",
		"max-dominance (sites 0,1)", srvM.HT, srvM.L, maxDominanceTruth(sites[0], sites[1]))

	srvQ, err := c.Quantile(ctx, "flows", uint64(hot), 2)
	check(err)
	locQ, err := core.QuantilePPS(ppsLocal, hot, 2)
	check(err)
	mustEqual("quantile", srvQ.HT, locQ.HT)
	fmt.Printf("%-34s %14.6g %14s %14.6g\n",
		fmt.Sprintf("median of key %d across sites", hot), srvQ.HT, "-", truthQ)

	srvS, err := c.Sum(ctx, "flows", 2)
	check(err)
	locS := ppsLocal[2].SubsetSum(nil)
	mustEqual("sum", srvS.Sum, locS)
	fmt.Printf("%-34s %14.6g %14s %14.6g\n",
		"site 2 total (subset sum)", srvS.Sum, "-", sites[2].Total())

	fmt.Printf("\nevery server answer is bit-identical to the in-process estimate ✓\n")
	fmt.Printf("(the summaries travelled as ~%d keys per site instead of %d raw pairs)\n",
		expectedK, sharedKeys+uniqueKeys)

	// --- VarOpt_k: variance-optimal fixed-size reservoirs ----------------
	// The fourth summary kind. Site 0 summarizes in-process and posts the
	// finished reservoir, so the server's answer must equal the local
	// estimate bit for bit (same object, different transport). Site 1
	// ingests raw pairs and the SERVER's reservoir draws its own drop
	// decisions — a different random sample than any local run — so the
	// two estimates agree statistically, not bitwise. The anchor is the
	// VarOpt invariant Σ max(w, tau) = Σ pushed: both full-reservoir sums
	// reproduce the exact site total up to float rounding, and that is the
	// Monte Carlo tolerance the comparison uses.
	fmt.Printf("\nVarOpt_k reservoirs (k = %d of %d keys per site):\n\n", varoptK, sharedKeys+uniqueKeys)
	vo0 := summ.SummarizeVarOpt(0, sites[0], varoptK)
	vpost, err := c.PostSummary(ctx, "reservoirs", vo0)
	check(err)
	fmt.Printf("site 0: POST /v1/summaries            varopt summary, %d keys (tau = %.4g)\n",
		vpost.Size, vo0.Sample.Tau)
	srvV, err := c.Sum(ctx, "reservoirs", 0)
	check(err)
	mustEqual("varopt sum (posted)", srvV.Sum, vo0.SubsetSum(nil))

	vpost, err = c.Ingest(ctx, client.IngestOptions{
		Dataset: "reservoirs", Instance: 1, Kind: "varopt", Format: "ndjson",
		Salt: salt, SaltSet: true, K: varoptK,
	}, bytes.NewReader(ndjsonBody(sites[1])))
	check(err)
	fmt.Printf("site 1: POST /v1/ingest (ndjson)      %d pairs -> %d keys\n", vpost.Pairs, vpost.Size)
	srvV1, err := c.Sum(ctx, "reservoirs", 1)
	check(err)
	locV1 := summ.SummarizeVarOpt(1, sites[1], varoptK).SubsetSum(nil)
	truthV1 := sites[1].Total()
	mustClose("varopt sum (server reservoir vs total)", srvV1.Sum, truthV1, 1e-9*truthV1)
	mustClose("varopt sum (in-process reservoir vs total)", locV1, truthV1, 1e-9*truthV1)
	fmt.Printf("%-34s %14.6g %14.6g %14.6g\n", "varopt subset sum (site 1)", srvV1.Sum, locV1, truthV1)
	fmt.Printf("server and in-process reservoirs reproduce the exact site total ✓\n")

	// --- one pass, all instances ----------------------------------------
	// The same three sites again, but now their streams are combined into
	// one (key, instance, value) stream and every instance is summarized
	// with a single scan: per-instance samplers behind each shard worker
	// of the async engine pipeline.
	fmt.Printf("\none-pass multi-instance summarization:\n\n")
	ids := []int{0, 1, 2}
	acfg := engine.Config{Parallel: true, Shards: 4, Async: true, QueueDepth: 4, BatchSize: 256}

	multiLocal := summ.SummarizeMultiPPSWith(acfg, ids, sites, taus)
	for i := range sites {
		mustEqualSample(fmt.Sprintf("one-pass pps instance %d", i),
			multiLocal[i].Sample, ppsLocal[i].Sample, multiLocal[i].Tau, ppsLocal[i].Tau)
	}
	fmt.Printf("in-process: 1 scan over %d combined pairs == 3 per-instance scans (bit-identical) ✓\n",
		3*(sharedKeys+uniqueKeys))

	// Coordinated (shared-seed) randomization rides the same pipeline:
	// similar instances then receive similar samples (§7.2).
	co := core.NewCoordinatedSummarizer(salt)
	coMulti := co.SummarizeMultiBottomKWith(acfg, ids, sites, expectedK, sampling.PPS{})
	for i, in := range sites {
		want := co.SummarizeBottomK(i, in, expectedK, sampling.PPS{})
		mustEqualSample(fmt.Sprintf("coordinated one-pass bottom-k instance %d", i),
			coMulti[i].Sample, want.Sample, coMulti[i].Sample.Tau, want.Sample.Tau)
	}
	fmt.Printf("coordinated (shared-seed) one-pass bottom-k == per-instance passes ✓\n")

	// Over HTTP: one POST /v1/ingest/multi populates every instance of a
	// fresh dataset, and the stored summaries answer queries with exactly
	// the bits of the per-instance path.
	mpost, err := c.IngestMulti(ctx, client.MultiIngestOptions{
		Dataset: "flows1p", Instances: ids, Kind: "pps", Format: "ndjson",
		Salt: salt, SaltSet: true, Taus: taus,
	}, bytes.NewReader(multiNdjsonBody(sites)))
	check(err)
	fmt.Printf("POST /v1/ingest/multi: %d pairs -> %d instances, sizes %v\n",
		mpost.Pairs, len(mpost.Instances), mpost.Sizes)

	srvM1, err := c.MaxDominance(ctx, "flows1p", 0, 1)
	check(err)
	mustEqual("one-pass maxdominance", srvM1.HT, locM.HT)
	mustEqual("one-pass maxdominance", srvM1.L, locM.L)
	srvS1, err := c.Sum(ctx, "flows1p", 2)
	check(err)
	mustEqual("one-pass sum", srvS1.Sum, locS)
	fmt.Printf("queries over the one-pass dataset match the per-instance path bit for bit ✓\n")

	// --- wire format v2: binary posts mixed with JSON ---------------------
	// The same summaries once more, but now the wire format varies per
	// site: site 0 posts v1 JSON, sites 1 and 2 post the v2 binary format
	// through a WithWireVersion(2) client. Codecs change bytes on the
	// wire, never estimates — so the mixed dataset must answer every
	// query with exactly the bits of the all-JSON dataset.
	fmt.Printf("\nwire-format negotiation (v1 JSON vs v2 binary):\n\n")
	c2 := client.New(c.BaseURL(), nil, client.WithWireVersion(2))
	if hr.WireVersions == nil {
		fmt.Fprintln(os.Stderr, "healthz advertises no wire versions")
		os.Exit(1)
	}
	fmt.Printf("server speaks wire versions %v (healthz)\n", hr.WireVersions)

	postMix, err := c.PostSummary(ctx, "flowsmix", ppsLocal[0])
	check(err)
	if postMix.Wire != 1 {
		fmt.Fprintf(os.Stderr, "v1 post stored as wire %d\n", postMix.Wire)
		os.Exit(1)
	}
	for i := 1; i <= 2; i++ {
		postMix, err = c2.PostSummary(ctx, "flowsmix", ppsLocal[i])
		check(err)
		if postMix.Wire != 2 {
			fmt.Fprintf(os.Stderr, "v2 post stored as wire %d\n", postMix.Wire)
			os.Exit(1)
		}
	}
	v1bytes, err := core.EncodeSummary(ppsLocal[1], 1)
	check(err)
	v2bytes, err := core.EncodeSummary(ppsLocal[1], 2)
	check(err)
	fmt.Printf("site 1 summary: %d bytes as JSON, %d bytes as v2 binary (%.0f%%)\n",
		len(v1bytes), len(v2bytes), 100*float64(len(v2bytes))/float64(len(v1bytes)))

	srvMixM, err := c.MaxDominance(ctx, "flowsmix", 0, 1)
	check(err)
	mustEqual("mixed-wire maxdominance", srvMixM.HT, locM.HT)
	mustEqual("mixed-wire maxdominance", srvMixM.L, locM.L)
	srvMixQ, err := c.Quantile(ctx, "flowsmix", uint64(hot), 2)
	check(err)
	mustEqual("mixed-wire quantile", srvMixQ.HT, locQ.HT)
	srvMixS, err := c.Sum(ctx, "flowsmix", 2)
	check(err)
	mustEqual("mixed-wire sum", srvMixS.Sum, locS)
	fmt.Printf("mixed v1/v2 dataset answers every query bit-identically to the all-JSON one ✓\n")

	// Fetch-back negotiates per request: the same stored instance comes
	// home as JSON (default Accept) and as binary (v2 Accept), decoding
	// to bit-equal samples either way.
	dec, err := c2.FetchDecodedSummary(ctx, "flowsmix", 1)
	check(err)
	decPPS, ok := dec.(*core.PPSSummary)
	if !ok || !core.Combinable(decPPS, ppsLocal[1]) {
		fmt.Fprintln(os.Stderr, "v2 fetch-back lost the summary's randomization")
		os.Exit(1)
	}
	mustEqualSample("v2 fetch-back", decPPS.Sample, ppsLocal[1].Sample, decPPS.Tau, ppsLocal[1].Tau)
	raw, err := c.FetchSummary(ctx, "flowsmix", 1)
	check(err)
	decJSON, err := core.DecodeSummary(raw)
	check(err)
	mustEqualSample("v1 fetch-back", decJSON.(*core.PPSSummary).Sample, ppsLocal[1].Sample,
		decJSON.(*core.PPSSummary).Tau, ppsLocal[1].Tau)
	fmt.Printf("fetch-back in both wire formats decodes to the same summary ✓\n")

	// --- durability: kill the server, recover, re-ask -------------------
	// The acts above lose everything if summaryd restarts. Now the same
	// posts go to a server backed by internal/store (summaryd -data-dir):
	// every accepted summary is WAL-appended before it is acknowledged.
	// The server is then killed without any farewell snapshot and a fresh
	// process recovers the registry from disk — and must answer every
	// query with the exact bits of the pre-kill answers.
	fmt.Printf("\ndurability (WAL + snapshot recovery):\n\n")
	dir, err := os.MkdirTemp("", "dispersed-store-")
	check(err)
	defer os.RemoveAll(dir)

	regD := server.NewRegistry()
	st, err := store.Open(dir, store.Options{}, regD.Put)
	check(err)
	regD.SetPersister(st)
	lnD, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go func() {
		_ = http.Serve(lnD, server.New(regD, engine.Config{}, server.WithStoreStatus(st.Status)))
	}()
	cD := client.New("http://"+lnD.Addr().String(), nil)
	for i := range ppsLocal {
		_, err = cD.PostSummary(ctx, "flows", ppsLocal[i])
		check(err)
	}
	// One raw ingest too: the ingest path persists through the same hook.
	_, err = cD.Ingest(ctx, client.IngestOptions{
		Dataset: "actives", Instance: 0, Kind: "set", Format: "csv",
		Salt: salt, SaltSet: true, P: setP,
	}, bytes.NewReader(csvBody(sites[0])))
	check(err)

	beforeM, err := cD.MaxDominance(ctx, "flows", 0, 1)
	check(err)
	beforeQ, err := cD.Quantile(ctx, "flows", uint64(hot), 2)
	check(err)
	beforeS, err := cD.Sum(ctx, "flows", 2)
	check(err)
	hrD, err := cD.Health(ctx)
	check(err)
	fmt.Printf("durable server: %d datasets, WAL holds %d records (%d bytes)\n",
		hrD.Datasets, hrD.Store.WALRecords, hrD.Store.WALBytes)

	// Kill: drop the listener and the store with no farewell snapshot —
	// the graceful-shutdown step a crash never gets. (Close releases the
	// data dir's single-owner lock so this process can reopen it; every
	// acknowledged post was already flushed to the WAL at append time, so
	// recovery owes us all four summaries from log replay alone. CI kills
	// a real summaryd with SIGKILL for the no-Close-at-all variant.)
	lnD.Close()
	check(st.Close())

	regR := server.NewRegistry()
	stR, err := store.Open(dir, store.Options{}, regR.Put)
	check(err)
	regR.SetPersister(stR)
	lnR, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	defer lnR.Close()
	go func() {
		_ = http.Serve(lnR, server.New(regR, engine.Config{}, server.WithStoreStatus(stR.Status)))
	}()
	cR := client.New("http://"+lnR.Addr().String(), nil)
	hrR, err := cR.Health(ctx)
	check(err)
	if hrR.Store == nil || hrR.Store.RecoveredSummaries != 4 {
		fmt.Fprintf(os.Stderr, "recovery expected 4 summaries, health says %+v\n", hrR.Store)
		os.Exit(1)
	}
	fmt.Printf("killed and restarted: recovered %d summaries in %d datasets from %s\n",
		hrR.Store.RecoveredSummaries, hrR.Store.RecoveredDatasets, dir)

	afterM, err := cR.MaxDominance(ctx, "flows", 0, 1)
	check(err)
	mustEqual("recovered maxdominance", afterM.HT, beforeM.HT)
	mustEqual("recovered maxdominance", afterM.L, beforeM.L)
	afterQ, err := cR.Quantile(ctx, "flows", uint64(hot), 2)
	check(err)
	mustEqual("recovered quantile", afterQ.HT, beforeQ.HT)
	afterS, err := cR.Sum(ctx, "flows", 2)
	check(err)
	mustEqual("recovered sum", afterS.Sum, beforeS.Sum)
	fmt.Printf("every query answers bit-identically across the kill/recover cycle ✓\n")

	// --- request tracing: one traceparent from client to WAL -------------
	// The observability counterpart of the acts above: a traced server (as
	// summaryd runs with -trace) records one span tree per request. The
	// client opens its own root span, the traceparent header carries it
	// over HTTP, the server's request span joins the client's trace, and
	// the store's WAL append records as a grandchild — three layers from
	// one trace ID, all served back on GET /debug/traces.
	fmt.Printf("\nrequest tracing (client → server → store):\n\n")
	tracer := trace.New(16)
	dirT, err := os.MkdirTemp("", "dispersed-trace-")
	check(err)
	defer os.RemoveAll(dirT)
	regT := server.NewRegistry()
	stT, err := store.Open(dirT, store.Options{Tracer: tracer}, regT.Put)
	check(err)
	defer stT.Close()
	regT.SetPersister(stT)
	lnT, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	defer lnT.Close()
	go func() {
		_ = http.Serve(lnT, server.New(regT, engine.Config{},
			server.WithObserver(server.NewObserver(obs.NewRegistry())),
			server.WithTracer(tracer)))
	}()
	cT := client.New("http://"+lnT.Addr().String(), nil)

	root := tracer.StartSpan("dispersed.post", trace.SpanContext{})
	_, err = cT.PostSummary(trace.ContextWithSpan(ctx, root), "flows", ppsLocal[0])
	check(err)
	root.Finish()

	var serverRec *trace.Record
	for _, rec := range tracer.Traces() {
		if rec.TraceID == root.TraceID() && rec.RemoteParent {
			serverRec = &rec
			break
		}
	}
	if serverRec == nil {
		fmt.Fprintln(os.Stderr, "tracing: no server-side record joined the client's trace")
		os.Exit(1)
	}
	byID := make(map[string]trace.SpanRecord)
	for _, sp := range serverRec.Spans {
		byID[sp.SpanID] = sp
	}
	depth := 0
	for _, sp := range serverRec.Spans {
		if sp.Name != "store.append" {
			continue
		}
		// Walk up to the request root: client layer + the chain here.
		depth = 2 // the client's root span + this store span
		for p := sp.ParentID; p != ""; p = byID[p].ParentID {
			depth++
		}
	}
	if depth < 3 {
		fmt.Fprintf(os.Stderr, "tracing: want >= 3 span layers, got %d (%+v)\n", depth, serverRec.Spans)
		os.Exit(1)
	}
	fmt.Printf("trace %s: %d span layers (client root -> server %s -> store.append)\n",
		root.TraceID(), depth, serverRec.Spans[0].Name)
	fmt.Printf("one POST produced a multi-hop trace across process boundaries ✓\n")
}

// multiNdjsonBody renders all sites as one combined (key, instance,
// value) ndjson stream, interleaved by key.
func multiNdjsonBody(sites []dataset.Instance) []byte {
	var buf bytes.Buffer
	seen := make(map[dataset.Key]bool)
	for _, in := range sites {
		for h := range in {
			seen[h] = true
		}
	}
	keys := make([]dataset.Key, 0, len(seen))
	for h := range seen {
		keys = append(keys, h)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, h := range keys {
		for i, in := range sites {
			if v, ok := in[h]; ok {
				fmt.Fprintf(&buf, "{\"key\":%d,\"instance\":%d,\"value\":%g}\n", uint64(h), i, v)
			}
		}
	}
	return buf.Bytes()
}

// mustEqualSample asserts bit-equality of two weighted samples.
func mustEqualSample(what string, got, want *sampling.WeightedSample, gotTau, wantTau float64) {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, what+": "+format+"\n", args...)
		os.Exit(1)
	}
	if gotTau != wantTau && !(math.IsInf(gotTau, 1) && math.IsInf(wantTau, 1)) {
		fail("tau %v != %v", gotTau, wantTau)
	}
	if len(got.Values) != len(want.Values) {
		fail("size %d != %d", len(got.Values), len(want.Values))
	}
	for h, v := range want.Values {
		if got.Values[h] != v {
			fail("key %d: %v != %v", h, got.Values[h], v)
		}
	}
}

// flowID maps a small sequence number to a realistic 64-bit flow
// identifier, the kind of key edge sites actually hold (hashes of
// 5-tuples, not 1, 2, 3, …). Full-width keys are also what makes the v2
// byte comparison honest: JSON spells all ~20 digits of each one.
func flowID(seq uint64) dataset.Key {
	return dataset.Key(xhash.Mix64(0x9E3779B97F4A7C15 ^ seq))
}

// makeSites builds three overlapping heavy-tailed instances: sharedKeys
// keys active at every site (correlated values), plus uniqueKeys
// site-local keys each.
func makeSites() []dataset.Instance {
	rng := randx.New(7)
	sites := make([]dataset.Instance, 3)
	for i := range sites {
		sites[i] = make(dataset.Instance, sharedKeys+uniqueKeys)
	}
	seq := uint64(1)
	for i := 0; i < sharedKeys; i++ {
		base := math.Floor(rng.Pareto(4, 1.3)) + 1
		key := flowID(seq)
		for s := range sites {
			v := math.Floor(base * (0.5 + rng.Float64()))
			if v < 1 {
				v = 1
			}
			sites[s][key] = v
		}
		seq++
	}
	for s := range sites {
		for i := 0; i < uniqueKeys; i++ {
			sites[s][flowID(seq)] = math.Floor(rng.Pareto(4, 1.3)) + 1
			seq++
		}
	}
	return sites
}

func members(in dataset.Instance) map[dataset.Key]bool {
	m := make(map[dataset.Key]bool, len(in))
	for h := range in {
		m[h] = true
	}
	return m
}

func ndjsonBody(in dataset.Instance) []byte {
	var buf bytes.Buffer
	for _, h := range in.Keys() {
		fmt.Fprintf(&buf, "{\"key\":%d,\"value\":%g}\n", uint64(h), in[h])
	}
	return buf.Bytes()
}

func csvBody(in dataset.Instance) []byte {
	var buf bytes.Buffer
	buf.WriteString("key,value\n")
	for _, h := range in.Keys() {
		fmt.Fprintf(&buf, "%d,%g\n", uint64(h), in[h])
	}
	return buf.Bytes()
}

// hottestSharedKey picks the shared key with the largest minimum value
// across sites — a key every summary is near-certain to retain, so its
// quantile is determined — and returns it with the true median.
func hottestSharedKey(sites []dataset.Instance) (dataset.Key, float64) {
	var best dataset.Key
	bestMin := -1.0
	for seq := uint64(1); seq <= sharedKeys; seq++ {
		h := flowID(seq)
		m := math.Inf(1)
		for _, in := range sites {
			if v := in[h]; v < m {
				m = v
			}
		}
		if m > bestMin {
			best, bestMin = h, m
		}
	}
	v := make([]float64, len(sites))
	for i, in := range sites {
		v[i] = in[best]
	}
	// Median of three: the value that is neither the max nor the min.
	a, b, c := v[0], v[1], v[2]
	med := math.Max(math.Min(a, b), math.Min(math.Max(a, b), c))
	return best, med
}

func unionSize(sites []dataset.Instance) int {
	seen := make(map[dataset.Key]bool)
	for _, in := range sites {
		for h := range in {
			seen[h] = true
		}
	}
	return len(seen)
}

func maxDominanceTruth(a, b dataset.Instance) float64 {
	return dataset.NewMatrix(a, b).SumAggregate(dataset.Max, nil)
}

func mustEqual(what string, server, direct float64) {
	if server != direct {
		fmt.Fprintf(os.Stderr, "%s: server %v != direct %v\n", what, server, direct)
		os.Exit(1)
	}
}

// mustClose asserts agreement within an absolute tolerance — for the
// randomized comparisons where bit-equality is not the contract.
func mustClose(what string, got, want, tol float64) {
	if math.Abs(got-want) > tol {
		fmt.Fprintf(os.Stderr, "%s: %v != %v (tolerance %v)\n", what, got, want, tol)
		os.Exit(1)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
