// Derive your own estimator. The paper's conclusion hopes that "tedious
// derivations of estimators can be replaced by automated tools" — this
// example is that tool in action.
//
// We pick a function the paper gives no closed form for — the SECOND
// largest of three entries (a quantile with 1 < ℓ < r, for which plain HT
// is provably suboptimal, §4) — and derive estimators for it on a
// discrete domain with the generic engines:
//
//   - Algorithm 1 (plain order-based f̂(≺)) under the dense-first order:
//     unbiased but NOT nonnegative here, demonstrating why the paper
//     develops the constrained constructions;
//   - f̂(+≺): the same order with the nonnegativity constraints (9)
//     enforced by a small QP;
//   - Algorithm 2 (f̂(U)): sparse-first batches, symmetric and nonnegative.
//
// Run with: go run ./examples/derive
package main

import (
	"fmt"
	"sort"

	"repro/internal/estimator"
)

func main() {
	second := func(v []float64) float64 {
		s := append([]float64(nil), v...)
		sort.Sort(sort.Reverse(sort.Float64Slice(s)))
		return s[1]
	}
	prob := estimator.DiscreteProblem{
		P:       []float64{0.4, 0.4, 0.4},
		Domains: [][]float64{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}},
		F:       second,
		Less:    estimator.MaxLOrder, // dense-first order, as for max^(L)
	}

	fmt.Println("deriving estimators for the 2nd-largest of 3 entries, p=0.4, domain {0,1,2}³")

	plain, err := estimator.Derive(prob)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nAlgorithm 1, dense-first:  min estimate %.4g → NOT nonnegative;\n", plain.MinEstimate)
	fmt.Println("  (unbiased, but a negative estimator is outside the §2.1 desiderata —")
	fmt.Println("   this is the failure mode that motivates f̂(+≺) and f̂(U).)")

	dense, err := estimator.DerivePlus(prob)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nf̂(+≺), dense-first:       %d outcomes, min estimate %.4g (nonnegative: %v)\n",
		dense.Len(), dense.MinEstimate, dense.Nonnegative())

	sparse, err := estimator.DeriveU(estimator.DiscreteProblem{
		P: prob.P, Domains: prob.Domains, F: prob.F, Less: estimator.SparseOrder,
	}, estimator.PositivesBatch)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Algorithm 2, sparse-first: %d outcomes, min estimate %.4g (nonnegative: %v)\n",
		sparse.Len(), sparse.MinEstimate, sparse.Nonnegative())

	ht := func(o estimator.ObliviousOutcome) float64 {
		return estimator.HTOblivious(o, second)
	}
	wrap := func(d *estimator.Derived) func(estimator.ObliviousOutcome) float64 {
		return func(o estimator.ObliviousOutcome) float64 {
			x, err := d.Estimate(o)
			if err != nil {
				panic(err)
			}
			return x
		}
	}

	fmt.Println("\nexact variances (enumeration over all outcomes):")
	fmt.Printf("%-10s %10s %14s %14s\n", "data", "HT", "dense f̂(+≺)", "sparse f̂(U)")
	for _, v := range [][]float64{
		{2, 2, 2}, {2, 2, 1}, {2, 1, 1}, {2, 1, 0}, {1, 1, 0}, {2, 2, 0}, {1, 0, 0},
	} {
		mean, varHT := estimator.ObliviousMoments(prob.P, v, ht)
		if abs(mean-second(v)) > 1e-9 {
			panic("HT biased?!")
		}
		meanD, varD := estimator.ObliviousMoments(prob.P, v, wrap(dense))
		meanS, varS := estimator.ObliviousMoments(prob.P, v, wrap(sparse))
		if abs(meanD-second(v)) > 1e-9 || abs(meanS-second(v)) > 1e-9 {
			panic("derived estimator biased?!")
		}
		fmt.Printf("%-10s %10.4g %14.4g %14.4g\n",
			fmt.Sprintf("(%g,%g,%g)", v[0], v[1], v[2]), varHT, varD, varS)
	}

	fmt.Println("\nBoth constrained estimators are unbiased, nonnegative, and far below HT")
	fmt.Println("everywhere. Neither dominates the other — dense-first wins on fully")
	fmt.Println("agreeing data, sparse-first on the rest — the same Pareto frontier the")
	fmt.Println("paper constructs by hand for max and OR.")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
