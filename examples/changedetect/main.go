// Change detection across sensor snapshots: use multi-instance estimators
// to monitor a fleet of sensors from independently transmitted samples.
//
// Each snapshot is sampled on the sensor side (saving battery/bandwidth —
// the paper's dispersed-data constraint) with reproducible seeds. The
// monitoring station later answers two kinds of queries from the samples:
//
//   - activity: how many sensors reported a positive value in either of
//     two rounds (distinct count via OR estimators);
//   - drift: the max-dominance norm between rounds, whose growth against a
//     single round's total signals upward drift.
//
// It also contrasts independent sampling with coordinated (shared-seed)
// sampling: coordination makes similar snapshots produce similar samples,
// which pays off for multi-instance queries (§7.2).
//
// Run with: go run ./examples/changedetect
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/simdata"
	"repro/internal/stats"
)

func main() {
	const sensors = 5000
	m := simdata.SensorSnapshots(sensors, 4, 0.35, 12)
	fmt.Printf("fleet: %d sensors, 4 rounds, drifting readings\n\n", sensors)

	// Activity across rounds 1 and 4 (binary view: reading ≥ 50).
	active := func(in dataset.Instance) map[dataset.Key]bool {
		out := make(map[dataset.Key]bool)
		for h, v := range in {
			if v >= 50 {
				out[h] = true
			}
		}
		return out
	}
	a1, a4 := active(m.Instances[0]), active(m.Instances[3])
	truthUnion := 0.0
	seen := map[dataset.Key]bool{}
	for h := range a1 {
		seen[h] = true
		truthUnion++
	}
	for h := range a4 {
		if !seen[h] {
			truthUnion++
		}
	}
	s := core.NewSummarizer(99)
	d, err := core.DistinctCount(s.SummarizeSet(0, a1, 0.1), s.SummarizeSet(3, a4, 0.1), nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("sensors ≥50 in round 1 or 4: truth %g, HT %.0f, L %.0f (p=0.1)\n\n", truthUnion, d.HT, d.L)

	// Drift: Σmax between round pairs vs the base round total. A ratio
	// well above 1 on (1, t) indicates upward drift by round t.
	base := m.Instances[0].Total()
	for t := 1; t < 4; t++ {
		sum1 := s.SummarizePPSExpectedSize(0, m.Instances[0], 400)
		sumT := s.SummarizePPSExpectedSize(t, m.Instances[t], 400)
		est, err := core.MaxDominance(sum1, sumT, nil)
		if err != nil {
			panic(err)
		}
		truth := dataset.NewMatrix(m.Instances[0], m.Instances[t]).SumAggregate(dataset.Max, nil)
		fmt.Printf("rounds (1,%d): Σmax truth %.4g, L estimate %.4g, drift index %.3f\n",
			t+1, truth, est.L, est.L/base)
	}

	// Coordinated vs independent sampling: sample overlap between rounds.
	fmt.Println("\nsample overlap between consecutive rounds (400 keys each):")
	indep := core.NewSummarizer(7)
	coord := core.NewCoordinatedSummarizer(7)
	for _, mode := range []struct {
		name string
		s    *core.Summarizer
	}{{"independent", indep}, {"coordinated", coord}} {
		x := mode.s.SummarizePPSExpectedSize(0, m.Instances[0], 400)
		y := mode.s.SummarizePPSExpectedSize(1, m.Instances[1], 400)
		overlap := 0
		for h := range x.Sample.Values {
			if _, ok := y.Sample.Values[h]; ok {
				overlap++
			}
		}
		fmt.Printf("  %-12s %d / %d keys shared\n", mode.name, overlap, x.Len())
	}
	fmt.Println("\ncoordination concentrates the sample on the same keys, which is why")
	fmt.Println("shared-seed schemes boost multi-instance estimates — at the price of")
	fmt.Println("unbalanced per-sensor transmission load (§7.2).")

	// A small accuracy comparison on a decomposable query (single-round
	// subset sum), where coordination is neutral.
	var w stats.Welford
	truthTotal := m.Instances[0].Total()
	for salt := uint64(0); salt < 500; salt++ {
		sz := core.NewSummarizer(salt)
		w.Add(sz.SummarizePPSExpectedSize(0, m.Instances[0], 400).SubsetSum(nil))
	}
	fmt.Printf("\nround-1 total: truth %.4g, PPS subset-sum mean %.4g (cv %.3f)\n",
		truthTotal, w.Mean(), w.CV())
}
