// Max-dominance over IP traffic (§8.2): estimate Σ_h max(v1(h), v2(h)) —
// the worst-case per-destination flow volume across two hours — from
// independent PPS samples of each hour.
//
// The workload is the synthetic substitute for the paper's proprietary
// hourly flow logs (substitution S1 in DESIGN.md), calibrated to the
// published statistics: ~24.5k destinations per hour, 38k distinct overall,
// ~5.5e5 flows per hour, Σmax ≈ 7.47e5.
//
// Run with: go run ./examples/maxdominance
package main

import (
	"fmt"

	"repro/internal/aggregate"
	"repro/internal/dataset"
	"repro/internal/sampling"
	"repro/internal/simdata"
	"repro/internal/stats"
	"repro/internal/xhash"
)

func main() {
	m := simdata.Generate(simdata.PaperTraffic())
	truth := m.SumAggregate(dataset.Max, nil)
	fmt.Printf("workload: %d + %d destinations (%d distinct), flows %.3g / %.3g, Σmax = %.4g\n\n",
		len(m.Instances[0]), len(m.Instances[1]), len(m.Keys()),
		m.Instances[0].Total(), m.Instances[1].Total(), truth)

	// Sample 2% of each hour's destinations (PPS: heavy destinations are
	// kept with probability 1).
	const fraction = 0.02
	tau1 := sampling.TauForExpectedSize(m.Instances[0], fraction*float64(len(m.Instances[0])))
	tau2 := sampling.TauForExpectedSize(m.Instances[1], fraction*float64(len(m.Instances[1])))

	res, err := aggregate.EstimateMaxDominance(m, tau1, tau2, xhash.Seeder{Salt: 8}, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("one draw at %.0f%% sampling (%d + %d keys kept):\n", fraction*100, res.Sampled1, res.Sampled2)
	fmt.Printf("  HT = %.4g (%.1f%% error)\n", res.HT, 100*rel(res.HT, truth))
	fmt.Printf("  L  = %.4g (%.1f%% error)\n\n", res.L, 100*rel(res.L, truth))

	// Exact variances via per-key seed-space integration (Figure 7's
	// machinery) — no Monte Carlo noise.
	varHT, varL, total, err := aggregate.DominanceVariance(m, tau1, tau2, nil, 48)
	if err != nil {
		panic(err)
	}
	fmt.Printf("exact normalized variances at %.0f%% sampling:\n", fraction*100)
	fmt.Printf("  var[HT]/mu² = %.3g\n", stats.NormalizedVar(varHT, total))
	fmt.Printf("  var[L]/mu²  = %.3g\n", stats.NormalizedVar(varL, total))
	fmt.Printf("  ratio       = %.2f  (paper band: 2.45–2.7)\n", varHT/varL)

	// Selection: restrict to the heavy destinations of hour 1.
	heavy := func(h dataset.Key) bool { return m.Instances[0][h] >= 100 }
	resH, err := aggregate.EstimateMaxDominance(m, tau1, tau2, xhash.Seeder{Salt: 8}, heavy)
	if err != nil {
		panic(err)
	}
	truthH := m.SumAggregate(dataset.Max, heavy)
	fmt.Printf("\nselected subset (hour-1 volume ≥ 100): truth %.4g, HT %.4g, L %.4g\n",
		truthH, resH.HT, resH.L)
}

func rel(got, want float64) float64 {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}
