// Quickstart: summarize two instances independently, then answer a
// multi-instance query from the summaries alone.
//
// The scenario is the paper's worked example (Figure 5): three small
// instances of key→value data. We sample instances 1 and 2 with Poisson
// PPS under reproducible ("known") seeds and estimate the max-dominance
// norm Σ_h max(v1(h), v2(h)) with both the classical Horvitz–Thompson
// estimator and the paper's Pareto-optimal partial-information estimator
// max^(L).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

func main() {
	m := dataset.FigureFive()
	in1, in2 := m.Instances[0], m.Instances[1]
	truth := dataset.NewMatrix(in1, in2).SumAggregate(dataset.Max, nil)
	fmt.Printf("data: %d keys across 2 instances, true max-dominance = %g\n\n", len(m.Keys()), truth)

	// One summarization pass per instance; tau=30 samples each key with probability v/30, so most
	// outcomes carry only partial information.
	s := core.NewSummarizer(2011)
	sum1 := s.SummarizePPS(0, in1, 30)
	sum2 := s.SummarizePPS(1, in2, 30)
	fmt.Printf("summary sizes: instance 1 → %d keys, instance 2 → %d keys\n", sum1.Len(), sum2.Len())

	est, err := core.MaxDominance(sum1, sum2, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("one draw:  HT = %.2f   L = %.2f   (truth %g)\n\n", est.HT, est.L, truth)

	// The single draw above is noisy; average squared error over many hash
	// salts shows why the partial-information estimator matters.
	var seHT, seL stats.Welford
	for salt := uint64(0); salt < 20000; salt++ {
		s := core.NewSummarizer(salt)
		e, err := core.MaxDominance(s.SummarizePPS(0, in1, 30), s.SummarizePPS(1, in2, 30), nil)
		if err != nil {
			panic(err)
		}
		seHT.Add((e.HT - truth) * (e.HT - truth))
		seL.Add((e.L - truth) * (e.L - truth))
	}
	fmt.Printf("mean squared error over 20000 summarizations:\n")
	fmt.Printf("  HT: %.1f\n", seHT.Mean())
	fmt.Printf("  L:  %.1f   (%.2fx lower)\n", seL.Mean(), seHT.Mean()/seL.Mean())
	fmt.Println("\nThe L estimator uses partial information: when only one of the two")
	fmt.Println("values was sampled, the outcome still lower-bounds the maximum, and")
	fmt.Println("the known seed of the unsampled entry upper-bounds its value.")
}
