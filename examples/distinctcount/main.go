// Distinct count over two request logs (§8.1): estimate the number of
// distinct resources requested across two periods from independent
// known-seed samples of each period.
//
// This is the paper's motivating application for the OR estimators: with
// unknown seeds no unbiased nonnegative estimator exists at small sampling
// probabilities (Theorem 6.1); with known seeds the L estimator needs up to
// 2× fewer samples than Horvitz–Thompson for the same accuracy (Figure 6).
//
// Run with: go run ./examples/distinctcount
package main

import (
	"fmt"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/simdata"
	"repro/internal/stats"
)

func main() {
	logs := simdata.RequestLog(50000, 2, 0.3, 77)
	truth := 0.0
	inter := 0.0
	for h := range logs[0] {
		truth++
		if logs[1][h] {
			inter++
		}
	}
	for h := range logs[1] {
		if !logs[0][h] {
			truth++
		}
	}
	j := inter / truth
	fmt.Printf("periods: |N1|=%d |N2|=%d, union=%g, Jaccard=%.3f\n\n", len(logs[0]), len(logs[1]), truth, j)

	const p = 0.05
	var errHT, errL stats.Welford
	var one core.DistinctEstimate
	for salt := uint64(0); salt < 3000; salt++ {
		s := core.NewSummarizer(salt)
		s1 := s.SummarizeSet(0, logs[0], p)
		s2 := s.SummarizeSet(1, logs[1], p)
		est, err := core.DistinctCount(s1, s2, nil)
		if err != nil {
			panic(err)
		}
		if salt == 0 {
			one = est
		}
		errHT.Add((est.HT - truth) * (est.HT - truth))
		errL.Add((est.L - truth) * (est.L - truth))
	}
	fmt.Printf("sampling probability p=%.2f (≈%d keys kept per period)\n", p, int(p*float64(len(logs[0]))))
	fmt.Printf("one draw:  HT = %.0f   L = %.0f   (truth %g)\n", one.HT, one.L, truth)
	fmt.Printf("category tallies of that draw: %+v\n\n", one.Counts)

	fmt.Printf("MSE over 3000 summarizations:  HT %.0f   L %.0f   (ratio %.2f)\n",
		errHT.Mean(), errL.Mean(), errHT.Mean()/errL.Mean())

	de := aggregate.DistinctEstimator{P1: p, P2: p}
	fmt.Printf("closed-form variances:         HT %.0f   L %.0f\n\n", de.VarHT(truth), de.VarL(truth, j))

	// How many samples would each estimator need for 10%% relative error?
	n := float64(len(logs[0]))
	pht := aggregate.RequiredPHT(n, j, 0.1)
	pl := aggregate.RequiredPL(n, j, 0.1)
	fmt.Printf("sample size for cv=0.1:  HT %.0f keys,  L %.0f keys (%.0f%% of HT)\n",
		pht*n, pl*n, 100*pl/pht)

	// And the Theorem 6.1 contrast: without seeds, unbiasedness is
	// impossible at this p.
	sol := estimator.SolveUnknownSeedsOR2(p, p)
	fmt.Printf("\nunknown seeds at p=%.2f: the unique unbiased estimator needs value %.0f\n", p, sol.EstBoth)
	fmt.Println("on the both-sampled outcome — negative, so no nonnegative unbiased")
	fmt.Println("estimator exists (Theorem 6.1). Known seeds are what make this work.")
}
