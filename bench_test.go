// Root benchmark harness: one benchmark per paper figure/table
// (regenerating the artifact end to end) plus micro-benchmarks of the
// estimators and sampling substrates they are built from.
//
// Run with: go test -bench=. -benchmem
package repro_test

import (
	"sort"
	"testing"

	"repro/internal/aggregate"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/estimator"
	"repro/internal/experiments"
	"repro/internal/randx"
	"repro/internal/sampling"
	"repro/internal/simdata"
	"repro/internal/xhash"
)

var sinkTables []*experiments.Table

// BenchmarkFigure1 regenerates the Figure 1 estimator tables and variance
// ratios (exact enumeration).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables = experiments.Figure1()
	}
}

// BenchmarkFigure2 regenerates the OR variance curves of Figure 2.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables = []*experiments.Table{experiments.Figure2()}
	}
}

// BenchmarkFigure3 regenerates the PPS max^(L) table of Figure 3 with its
// integration-based unbiasedness check.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables = []*experiments.Table{experiments.Figure3()}
	}
}

// BenchmarkFigure4 regenerates the Figure 4 variance and ratio curves
// (deterministic seed-space integration).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables = experiments.Figure4()
	}
}

// BenchmarkFigure5 regenerates the worked example of Figure 5.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables = experiments.Figure5()
	}
}

// BenchmarkFigure6 regenerates the sample-size curves of Figure 6
// (bisection over the exact variance formulas).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables = experiments.Figure6()
	}
}

// BenchmarkFigure7 regenerates Figure 7 on a 20×-scaled-down traffic
// workload (per-key exact variance integration; the full-scale figure is
// cmd/figures -fig 7).
func BenchmarkFigure7(b *testing.B) {
	opt := experiments.Figure7Options{ScaleDown: 20, IntegrationN: 32,
		Fractions: []float64{0.01, 0.1, 0.5}}
	for i := 0; i < b.N; i++ {
		sinkTables = []*experiments.Table{experiments.Figure7(opt)}
	}
}

// BenchmarkTheorem61 regenerates the impossibility report of §6.
func BenchmarkTheorem61(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables = []*experiments.Table{experiments.Theorem61()}
	}
}

// BenchmarkAblation regenerates the design-choice ablation tables (exact
// variances).
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables = experiments.Ablation()
	}
}

// --- Micro-benchmarks: estimators ---

var sinkF float64

func benchOutcomes(n int) []estimator.ObliviousOutcome {
	rng := randx.New(9)
	p := []float64{0.3, 0.6}
	out := make([]estimator.ObliviousOutcome, n)
	for i := range out {
		v := []float64{rng.Float64() * 100, rng.Float64() * 100}
		u := []float64{rng.Float64(), rng.Float64()}
		out[i] = estimator.SampleOblivious(v, u, p)
	}
	return out
}

// BenchmarkMaxL2 measures the per-outcome cost of the r=2 oblivious
// max^(L) estimator.
func BenchmarkMaxL2(b *testing.B) {
	outs := benchOutcomes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF += estimator.MaxL2(outs[i%len(outs)])
	}
}

// BenchmarkMaxU2 measures the r=2 oblivious max^(U) estimator.
func BenchmarkMaxU2(b *testing.B) {
	outs := benchOutcomes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF += estimator.MaxU2(outs[i%len(outs)])
	}
}

// BenchmarkMaxHTOblivious measures the HT baseline.
func BenchmarkMaxHTOblivious(b *testing.B) {
	outs := benchOutcomes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF += estimator.MaxHTOblivious(outs[i%len(outs)])
	}
}

// BenchmarkMaxLUniformCoefficients measures the O(r²) Theorem 4.2
// coefficient recurrence.
func BenchmarkMaxLUniformCoefficients(b *testing.B) {
	for _, r := range []int{4, 16, 64} {
		b.Run(benchName("r", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := estimator.NewMaxLUniform(r, 0.3)
				if err != nil {
					b.Fatal(err)
				}
				sinkF += e.PrefixSum(1)
			}
		})
	}
}

// BenchmarkMaxLUniformEstimate measures the per-outcome estimate with
// precomputed coefficients (r=8).
func BenchmarkMaxLUniformEstimate(b *testing.B) {
	e, err := estimator.NewMaxLUniform(8, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(4)
	vals := make([][]float64, 256)
	for i := range vals {
		k := 1 + rng.Intn(8)
		v := make([]float64, k)
		for j := range v {
			v[j] = rng.Float64() * 50
		}
		vals[i] = v
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF += e.EstimateValues(vals[i%len(vals)])
	}
}

// BenchmarkMaxL2PPS measures the known-seed PPS max^(L) closed form,
// including its logarithmic regimes.
func BenchmarkMaxL2PPS(b *testing.B) {
	rng := randx.New(12)
	tau := []float64{20, 30}
	outs := make([]estimator.PPSOutcome, 1024)
	for i := range outs {
		v := []float64{rng.Float64() * 40, rng.Float64() * 40}
		u := []float64{rng.Float64(), rng.Float64()}
		outs[i] = estimator.SamplePPS(v, u, tau)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF += estimator.MaxL2PPS(outs[i%len(outs)])
	}
}

// BenchmarkMaxHTPPS measures the PPS HT baseline.
func BenchmarkMaxHTPPS(b *testing.B) {
	rng := randx.New(12)
	tau := []float64{20, 30}
	outs := make([]estimator.PPSOutcome, 1024)
	for i := range outs {
		v := []float64{rng.Float64() * 40, rng.Float64() * 40}
		u := []float64{rng.Float64(), rng.Float64()}
		outs[i] = estimator.SamplePPS(v, u, tau)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF += estimator.MaxHTPPS(outs[i%len(outs)])
	}
}

// BenchmarkDeriveBinaryR3 measures the generic Algorithm 1 engine on a
// 3-entry binary domain.
func BenchmarkDeriveBinaryR3(b *testing.B) {
	prob := estimator.DiscreteProblem{
		P:       []float64{0.3, 0.4, 0.5},
		Domains: [][]float64{{0, 1}, {0, 1}, {0, 1}},
		F:       dataset.Max,
		Less:    estimator.MaxLOrder,
	}
	for i := 0; i < b.N; i++ {
		if _, err := estimator.Derive(prob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDerivePlusBinaryR3 measures the constrained f̂(+≺) engine
// (active-set QP per vector) on the same domain.
func BenchmarkDerivePlusBinaryR3(b *testing.B) {
	prob := estimator.DiscreteProblem{
		P:       []float64{0.3, 0.4, 0.5},
		Domains: [][]float64{{0, 1}, {0, 1}, {0, 1}},
		F:       dataset.Max,
		Less:    estimator.UasOrder,
	}
	for i := 0; i < b.N; i++ {
		if _, err := estimator.DerivePlus(prob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeriveUBinaryR3 measures the generic Algorithm 2 engine
// (batched QP) on a 3-entry binary domain.
func BenchmarkDeriveUBinaryR3(b *testing.B) {
	prob := estimator.DiscreteProblem{
		P:       []float64{0.3, 0.3, 0.3},
		Domains: [][]float64{{0, 1}, {0, 1}, {0, 1}},
		F:       dataset.OR,
		Less:    estimator.SparseOrder,
	}
	for i := 0; i < b.N; i++ {
		if _, err := estimator.DeriveU(prob, estimator.PositivesBatch); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks: sampling substrates ---

func benchInstance(n int) dataset.Instance {
	rng := randx.New(2)
	in := make(dataset.Instance, n)
	for k := dataset.Key(1); k <= dataset.Key(n); k++ {
		in[k] = 1 + rng.Pareto(1, 1.3)
	}
	return in
}

// BenchmarkPoissonPPS measures one PPS summarization pass over 10k keys.
func BenchmarkPoissonPPS(b *testing.B) {
	in := benchInstance(10000)
	tau := sampling.TauForExpectedSize(in, 500)
	seeder := xhash.Seeder{Salt: 3}
	seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sampling.PoissonPPS(in, tau, seed)
		sinkF += float64(s.Len())
	}
}

// BenchmarkBottomK measures one bottom-k pass (heap-based) over 10k keys.
func BenchmarkBottomK(b *testing.B) {
	in := benchInstance(10000)
	seeder := xhash.Seeder{Salt: 3}
	seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sampling.BottomK(in, 500, sampling.PPS{}, seed)
		sinkF += s.Tau
	}
}

// BenchmarkVarOptStream measures streaming 10k items through a VarOpt-500
// reservoir.
func BenchmarkVarOptStream(b *testing.B) {
	in := benchInstance(10000)
	keys := make([]dataset.Key, 0, len(in))
	for h := range in {
		keys = append(keys, h)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vo := sampling.NewVarOpt(500, randx.New(uint64(i)))
		for _, h := range keys {
			vo.Add(h, in[h])
		}
		sinkF += vo.Tau()
	}
}

// BenchmarkStreamBottomKPush measures the per-arrival cost of the
// streaming bottom-k sampler.
func BenchmarkStreamBottomKPush(b *testing.B) {
	in := benchInstance(4096)
	keys := make([]dataset.Key, 0, len(in))
	for h := range in {
		keys = append(keys, h)
	}
	seeder := xhash.Seeder{Salt: 6}
	seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
	s := sampling.NewStreamBottomK(256, sampling.PPS{}, seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := keys[i%len(keys)]
		s.Push(h, in[h])
	}
}

// BenchmarkStreamBottomKReject isolates the full-sampler reject path — the
// common case once k items are retained — per rank family: one seed hash,
// one multiply, one compare, no heap or map traffic, 0 allocs/op. The EXP
// variant is the one the threshold fast-reject transforms: the uniform
// draw rejects before the logarithm is taken.
func BenchmarkStreamBottomKReject(b *testing.B) {
	for _, fam := range []sampling.RankFamily{sampling.PPS{}, sampling.EXP{}} {
		b.Run(fam.Name(), func(b *testing.B) {
			seeder := xhash.Seeder{Salt: 6}
			seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
			s := sampling.NewStreamBottomK(256, fam, seed)
			for k := dataset.Key(1); k <= 4096; k++ {
				s.Push(k, 1000)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Tiny values rank far above tau: every arrival rejects.
				s.Push(dataset.Key(1000000+i%1024), 1e-9)
			}
		})
	}
}

// BenchmarkStreamBottomKEvict isolates the full-sampler accept path:
// every arrival ranks below tau, so each push pays the exact rank, one
// map delete + insert at steady size, and an O(log k) heap sift — still
// 0 allocs/op. Together with the reject benchmark this brackets the
// full sampler's per-arrival cost. Always-evict streams cannot run
// forever (tau only decreases), so the keys are pushed in descending
// rank order — every arrival out-ranks the whole retained sample — and
// the sampler is rebuilt outside the timer once per key-pool cycle.
func BenchmarkStreamBottomKEvict(b *testing.B) {
	for _, fam := range []sampling.RankFamily{sampling.PPS{}, sampling.EXP{}} {
		b.Run(fam.Name(), func(b *testing.B) {
			seeder := xhash.Seeder{Salt: 6}
			seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
			const m = 1 << 16
			keys := make([]dataset.Key, m)
			for i := range keys {
				keys[i] = dataset.Key(i + 1)
			}
			sort.Slice(keys, func(i, j int) bool {
				return fam.Rank(seed(keys[i]), 1000) > fam.Rank(seed(keys[j]), 1000)
			})
			var s *sampling.StreamBottomK
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i % m
				if j == 0 {
					b.StopTimer()
					s = sampling.NewStreamBottomK(256, fam, seed)
					b.StartTimer()
				}
				s.Push(keys[j], 1000)
			}
		})
	}
}

// BenchmarkTauForExpectedSize measures the threshold solver.
func BenchmarkTauForExpectedSize(b *testing.B) {
	in := benchInstance(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF += sampling.TauForExpectedSize(in, 500)
	}
}

// --- Engine benchmarks: sharded summarization throughput ---

// benchStream draws a deterministic 1M-pair stream with heavy-tailed
// values, the workload of the engine scaling benchmarks.
func benchStream(n int) []engine.Pair {
	rng := randx.New(11)
	pairs := make([]engine.Pair, n)
	for i := range pairs {
		pairs[i] = engine.Pair{Key: dataset.Key(i + 1), Value: 1 + rng.Pareto(1, 1.3)}
	}
	return pairs
}

// BenchmarkEngineBottomK measures sharded bottom-k summarization of a
// 1M-key stream at 1/2/4/8 shards. shards=1 is the sequential baseline
// (in-line StreamBottomK, no goroutines); the per-shard speedup only
// materializes when GOMAXPROCS cores are actually available.
func BenchmarkEngineBottomK(b *testing.B) {
	pairs := benchStream(1 << 20)
	seeder := xhash.Seeder{Salt: 9}
	seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(benchName("shards", shards), func(b *testing.B) {
			cfg := engine.Config{Parallel: shards > 1, Shards: shards}
			b.SetBytes(int64(len(pairs)) * 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := engine.NewBottomK(4096, sampling.PPS{}, seed, cfg)
				e.PushBatch(pairs)
				sinkF += e.Close().Tau
			}
		})
	}
}

// BenchmarkEnginePoissonPPS measures sharded Poisson PPS summarization of
// a 1M-key stream at 1/2/4/8 shards (stateless filter per shard, union
// merge).
func BenchmarkEnginePoissonPPS(b *testing.B) {
	pairs := benchStream(1 << 20)
	seeder := xhash.Seeder{Salt: 9}
	seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
	in := make(dataset.Instance, len(pairs))
	for _, p := range pairs {
		in[p.Key] = p.Value
	}
	tau := sampling.TauForExpectedSize(in, 4096)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(benchName("shards", shards), func(b *testing.B) {
			cfg := engine.Config{Parallel: shards > 1, Shards: shards}
			b.SetBytes(int64(len(pairs)) * 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := engine.NewPoissonPPS(tau, seed, cfg)
				e.PushBatch(pairs)
				sinkF += float64(e.Close().Len())
			}
		})
	}
}

// BenchmarkEngineAsync measures async-mode bottom-k summarization of a
// 1M-key stream across per-shard queue depths (4 shards, fixed batch):
// the queue-depth-vs-throughput curve of the bounded-backpressure design.
// The per-run "stalls" metric counts batch handoffs that found the
// destination queue full — the engine's explicit backpressure signal.
func BenchmarkEngineAsync(b *testing.B) {
	pairs := benchStream(1 << 20)
	seeder := xhash.Seeder{Salt: 9}
	seed := func(h dataset.Key) float64 { return seeder.Seed(0, uint64(h)) }
	for _, depth := range []int{1, 4, 16, 64} {
		b.Run(benchName("queue", depth), func(b *testing.B) {
			cfg := engine.Config{Parallel: true, Shards: 4, Async: true, QueueDepth: depth}
			b.SetBytes(int64(len(pairs)) * 16)
			var stalls uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := engine.NewBottomK(4096, sampling.PPS{}, seed, cfg)
				e.PushBatch(pairs)
				sinkF += e.Close().Tau
				// After Close, so the drain flush's stalls are counted too.
				stalls += e.Stats().Stalls
			}
			b.ReportMetric(float64(stalls)/float64(b.N), "stalls/op")
		})
	}
	// The steady sub-benchmark measures the long-lived producer path: one
	// async engine reused across iterations, each op pushing the full
	// 1M-pair stream. With the sync.Pool batch arena recycling slices from
	// the shard workers back to the producer, allocs/op must be 0 at
	// steady state.
	b.Run("steady", func(b *testing.B) {
		cfg := engine.Config{Parallel: true, Shards: 4, Async: true}
		e := engine.NewBottomK(4096, sampling.PPS{}, seed, cfg)
		e.PushBatch(pairs) // warm: fill the samplers and the batch arena
		b.SetBytes(int64(len(pairs)) * 16)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.PushBatch(pairs)
		}
		b.StopTimer()
		sinkF += e.Close().Tau
	})
}

// BenchmarkEngineMultiBottomK measures one-pass multi-instance bottom-k
// summarization: r coordinated instances populated by a single scan of a
// combined stream (the alternative is r separate scans).
func BenchmarkEngineMultiBottomK(b *testing.B) {
	const r = 4
	base := benchStream(1 << 18)
	pairs := make([]engine.MultiPair, 0, r*len(base))
	for _, p := range base {
		for i := 0; i < r; i++ {
			pairs = append(pairs, engine.MultiPair{Key: p.Key, Instance: i, Value: p.Value})
		}
	}
	seeder := xhash.Seeder{Salt: 9, Shared: true}
	seeds := func(i int) sampling.SeedFunc {
		return func(h dataset.Key) float64 { return seeder.Seed(i, uint64(h)) }
	}
	for _, shards := range []int{1, 4} {
		b.Run(benchName("shards", shards), func(b *testing.B) {
			cfg := engine.Config{Parallel: shards > 1, Shards: shards, Async: true}
			b.SetBytes(int64(len(pairs)) * 24)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := engine.NewMultiBottomK(r, 1024, sampling.PPS{}, seeds, cfg)
				e.PushBatch(pairs)
				for _, s := range e.Close() {
					sinkF += s.Tau
				}
			}
		})
	}
}

// --- Micro-benchmarks: aggregates ---

// BenchmarkMaxDominanceEstimate measures the end-to-end §8.2 pipeline on a
// 20×-scaled traffic workload (sampling both hours + summing per-key
// estimates).
func BenchmarkMaxDominanceEstimate(b *testing.B) {
	m := simdata.Generate(simdata.ScaledTraffic(20))
	tau1 := sampling.TauForExpectedSize(m.Instances[0], 100)
	tau2 := sampling.TauForExpectedSize(m.Instances[1], 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := aggregate.EstimateMaxDominance(m, tau1, tau2, xhash.Seeder{Salt: uint64(i)}, nil)
		if err != nil {
			b.Fatal(err)
		}
		sinkF += res.L
	}
}

// BenchmarkDistinctEstimate measures the §8.1 distinct-count pipeline over
// two 10k-key sets.
func BenchmarkDistinctEstimate(b *testing.B) {
	logs := simdata.RequestLog(10000, 2, 0.3, 5)
	e := aggregate.DistinctEstimator{P1: 0.1, P2: 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := aggregate.EstimateDistinct(logs[0], logs[1], 0.1, 0.1, xhash.Seeder{Salt: uint64(i)}, nil)
		sinkF += e.L(c)
	}
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
