// Command estimate combines serialized summaries into multi-instance
// estimates — the "post hoc" workflow: instances were summarized
// independently (possibly on different machines), the summaries were
// archived as JSON, and queries arrive later.
//
// Usage:
//
//	estimate -query maxdominance a.json b.json
//	estimate -query distinct     a.json b.json
//	estimate -query sum          a.json # single-summary subset-sum estimate
//	estimate -demo                      # generate, serialize, and query a demo pair
//	estimate -demo -wire 2              # serialize the demo pair in the v2 binary format
//	estimate -demo -shards 4 -batch 512 # demo summarization through the sharded engine
//	estimate -demo -shards 4 -async -queue 16 # async engine: bounded queues
//	estimate -demo -query sum -sampler varopt # VarOpt_k reservoir demo
//
// -shards selects the summarization strategy for the engine-backed demos
// (maxdominance's PPS summaries and sum's PPS or VarOpt summary): 1
// (default) runs the sequential pipeline, n>1 uses n hash-partitioned
// shards, 0 one shard per CPU. -batch sizes the per-shard arrival
// batches; -async runs the engine's async mode with bounded per-shard
// queues of -queue batches. Negative values are rejected with exit 2
// through engine.Config.Validate — the one rule every front door shares;
// 0 always means "use the default". The summary is identical for every
// setting; only throughput changes (for VarOpt, identical in
// distribution — the reservoir's drop decisions are randomized). The
// distinct demo's set summaries do not route through the engine (set
// sampling is stateless), so non-default flags are rejected there rather
// than silently ignored.
//
// -sampler picks the sum demo's summary kind: pps (default, threshold
// sampling sized to ~200 expected keys) or varopt (a VarOpt_k reservoir
// of exactly 200 keys — the variance-optimal fixed-size scheme).
//
// -wire selects the serialization of the -demo summary files: 1 (the
// default) writes the JSON wire format, 2 the compact binary v2 format.
// The query side never needs a flag — summary files of any registered
// wire format are decoded by sniffing, so v1 and v2 files mix freely on
// one command line. Unregistered versions exit 2.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/simdata"
)

func main() {
	query := flag.String("query", "maxdominance", "query to run: maxdominance, distinct, or sum")
	demo := flag.Bool("demo", false, "write a demo summary pair to the working directory and query it")
	sampler := flag.String("sampler", "pps", "summary kind for the sum demo: pps or varopt")
	shards := flag.Int("shards", 1, "summarization shards for -demo: 1 sequential, n>1 hash-partitioned, 0 per-CPU")
	batch := flag.Int("batch", engine.DefaultBatchSize, "per-shard batch size for -demo")
	async := flag.Bool("async", false, "run the -demo engine in async mode (bounded per-shard queues)")
	queue := flag.Int("queue", 0, "per-shard queue depth in batches for -demo (0 = default 8)")
	wire := flag.Int("wire", 1, "wire version of the -demo summary files (1 = JSON, 2 = binary)")
	flag.Parse()

	if _, err := core.CodecByVersion(*wire); err != nil {
		fmt.Fprintf(os.Stderr, "estimate: -wire %d: %v\n", *wire, err)
		os.Exit(2)
	}
	if *wire != 1 && !*demo {
		fmt.Fprintln(os.Stderr, "estimate: -wire only applies to -demo output (query inputs are sniffed)")
		os.Exit(2)
	}

	cfg := engine.Config{
		Parallel:   *shards != 1,
		Shards:     *shards,
		BatchSize:  *batch,
		Async:      *async,
		QueueDepth: *queue,
	}
	// One validation rule for every front door: the engine owns it.
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "estimate: %v\n", err)
		os.Exit(2)
	}
	engineFlagsSet := *shards != 1 || *batch != engine.DefaultBatchSize || *async || *queue != 0
	if engineFlagsSet && (!*demo || (*query != "maxdominance" && *query != "sum")) {
		fmt.Fprintln(os.Stderr, "estimate: -shards/-batch/-async/-queue only apply to the engine-backed demos (maxdominance, sum)")
		os.Exit(2)
	}
	if *sampler != "pps" && *sampler != "varopt" {
		fmt.Fprintf(os.Stderr, "estimate: unknown -sampler %q (pps, varopt)\n", *sampler)
		os.Exit(2)
	}
	if *sampler != "pps" && (!*demo || *query != "sum") {
		fmt.Fprintln(os.Stderr, "estimate: -sampler only applies to the sum demo (query inputs carry their kind)")
		os.Exit(2)
	}
	if *demo {
		if err := runDemo(*query, *sampler, cfg, *wire); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	want := 2
	if *query == "sum" {
		want = 1
	}
	if flag.NArg() != want {
		fmt.Fprintf(os.Stderr, "need exactly %d summary file(s) (or -demo)\n", want)
		os.Exit(2)
	}
	if err := run(*query, flag.Args()...); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(query string, files ...string) error {
	if query == "sum" {
		data, err := os.ReadFile(files[0])
		if err != nil {
			return err
		}
		sum, err := core.DecodeSummary(data)
		if err != nil {
			return err
		}
		est, ok := sum.(interface {
			SubsetSum(func(dataset.Key) bool) float64
		})
		if !ok {
			return fmt.Errorf("sum not supported for %s summaries", sum.Kind())
		}
		fmt.Printf("subset sum (%s, %d keys):\n  estimate = %.6g\n", sum.Kind(), sum.Size(), est.SubsetSum(nil))
		return nil
	}
	file1, file2 := files[0], files[1]
	d1, err := os.ReadFile(file1)
	if err != nil {
		return err
	}
	d2, err := os.ReadFile(file2)
	if err != nil {
		return err
	}
	switch query {
	case "maxdominance":
		s1, err := core.DecodePPSSummary(d1)
		if err != nil {
			return err
		}
		s2, err := core.DecodePPSSummary(d2)
		if err != nil {
			return err
		}
		est, err := core.MaxDominance(s1, s2, nil)
		if err != nil {
			return err
		}
		fmt.Printf("max-dominance over %d keys:\n  HT = %.6g\n  L  = %.6g\n", est.KeysUsed, est.HT, est.L)
	case "distinct":
		s1, err := core.DecodeSetSummary(d1)
		if err != nil {
			return err
		}
		s2, err := core.DecodeSetSummary(d2)
		if err != nil {
			return err
		}
		est, err := core.DistinctCount(s1, s2, nil)
		if err != nil {
			return err
		}
		fmt.Printf("distinct count:\n  HT = %.6g\n  L  = %.6g\n  categories: %+v\n", est.HT, est.L, est.Counts)
	default:
		return fmt.Errorf("unknown query %q", query)
	}
	return nil
}

func runDemo(query, sampler string, cfg engine.Config, wire int) error {
	dir, err := os.MkdirTemp("", "estimate-demo-")
	if err != nil {
		return err
	}
	// The JSON files stay pretty-printed for eyeballing; binary files use
	// the codec's canonical bytes and a .sum2 extension.
	writeSummary := func(i int, sum core.Summary) (string, error) {
		var data []byte
		var err error
		name := fmt.Sprintf("hour%d.json", i+1)
		if wire == 1 {
			data, err = json.MarshalIndent(sum, "", " ")
		} else {
			name = fmt.Sprintf("hour%d.sum%d", i+1, wire)
			data, err = core.EncodeSummary(sum, wire)
		}
		if err != nil {
			return "", err
		}
		path := filepath.Join(dir, name)
		return path, os.WriteFile(path, data, 0o644)
	}
	m := simdata.Generate(simdata.ScaledTraffic(20))
	s := core.NewSummarizer(2011)
	var paths [2]string
	switch query {
	case "maxdominance":
		for i := 0; i < 2; i++ {
			sum := s.SummarizePPSExpectedSizeWith(cfg, i, m.Instances[i], 200)
			if paths[i], err = writeSummary(i, sum); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %s, %s\n", paths[0], paths[1])
		fmt.Printf("truth: %.6g\n", m.SumAggregate(dataset.Max, nil))
	case "distinct":
		for i := 0; i < 2; i++ {
			members := make(map[dataset.Key]bool, len(m.Instances[i]))
			for h := range m.Instances[i] {
				members[h] = true
			}
			sum := s.SummarizeSet(i, members, 0.2)
			if paths[i], err = writeSummary(i, sum); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %s, %s\n", paths[0], paths[1])
		fmt.Printf("truth: %d\n", len(m.Keys()))
	case "sum":
		var sum core.Summary
		if sampler == "varopt" {
			sum = s.SummarizeVarOptWith(cfg, 0, m.Instances[0], 200)
		} else {
			sum = s.SummarizePPSExpectedSizeWith(cfg, 0, m.Instances[0], 200)
		}
		path, err := writeSummary(0, sum)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		fmt.Printf("truth: %.6g\n", m.Instances[0].Total())
		return run(query, path)
	default:
		return fmt.Errorf("unknown query %q", query)
	}
	return run(query, paths[0], paths[1])
}
