// Command estimate combines serialized summaries into multi-instance
// estimates — the "post hoc" workflow: instances were summarized
// independently (possibly on different machines), the summaries were
// archived as JSON, and queries arrive later.
//
// Usage:
//
//	estimate -query maxdominance a.json b.json
//	estimate -query distinct     a.json b.json
//	estimate -demo                      # generate, serialize, and query a demo pair
//	estimate -demo -shards 4 -batch 512 # demo summarization through the sharded engine
//	estimate -demo -shards 4 -async -queue 16 # async engine: bounded queues
//
// -shards selects the summarization strategy for the maxdominance -demo's
// PPS summaries: 1 (default) runs the sequential pipeline, n>1 uses n
// hash-partitioned shards, 0 one shard per CPU. -batch sizes the
// per-shard arrival batches; -async runs the engine's async mode with
// bounded per-shard queues of -queue batches. Negative values are
// rejected with exit 2 through engine.Config.Validate — the one rule
// every front door shares; 0 always means "use the default". The summary
// is identical for every setting; only throughput changes. The distinct
// demo's set summaries do not route through the engine (set sampling is
// stateless), so non-default flags are rejected there rather than
// silently ignored.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/simdata"
)

func main() {
	query := flag.String("query", "maxdominance", "query to run: maxdominance or distinct")
	demo := flag.Bool("demo", false, "write a demo summary pair to the working directory and query it")
	shards := flag.Int("shards", 1, "summarization shards for -demo: 1 sequential, n>1 hash-partitioned, 0 per-CPU")
	batch := flag.Int("batch", engine.DefaultBatchSize, "per-shard batch size for -demo")
	async := flag.Bool("async", false, "run the -demo engine in async mode (bounded per-shard queues)")
	queue := flag.Int("queue", 0, "per-shard queue depth in batches for -demo (0 = default 8)")
	flag.Parse()

	cfg := engine.Config{
		Parallel:   *shards != 1,
		Shards:     *shards,
		BatchSize:  *batch,
		Async:      *async,
		QueueDepth: *queue,
	}
	// One validation rule for every front door: the engine owns it.
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "estimate: %v\n", err)
		os.Exit(2)
	}
	engineFlagsSet := *shards != 1 || *batch != engine.DefaultBatchSize || *async || *queue != 0
	if engineFlagsSet && (!*demo || *query != "maxdominance") {
		fmt.Fprintln(os.Stderr, "estimate: -shards/-batch/-async/-queue only apply to the maxdominance demo's PPS summarization")
		os.Exit(2)
	}
	if *demo {
		if err := runDemo(*query, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "need exactly two summary files (or -demo)")
		os.Exit(2)
	}
	if err := run(*query, flag.Arg(0), flag.Arg(1)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(query, file1, file2 string) error {
	d1, err := os.ReadFile(file1)
	if err != nil {
		return err
	}
	d2, err := os.ReadFile(file2)
	if err != nil {
		return err
	}
	switch query {
	case "maxdominance":
		s1, err := core.DecodePPSSummary(d1)
		if err != nil {
			return err
		}
		s2, err := core.DecodePPSSummary(d2)
		if err != nil {
			return err
		}
		est, err := core.MaxDominance(s1, s2, nil)
		if err != nil {
			return err
		}
		fmt.Printf("max-dominance over %d keys:\n  HT = %.6g\n  L  = %.6g\n", est.KeysUsed, est.HT, est.L)
	case "distinct":
		s1, err := core.DecodeSetSummary(d1)
		if err != nil {
			return err
		}
		s2, err := core.DecodeSetSummary(d2)
		if err != nil {
			return err
		}
		est, err := core.DistinctCount(s1, s2, nil)
		if err != nil {
			return err
		}
		fmt.Printf("distinct count:\n  HT = %.6g\n  L  = %.6g\n  categories: %+v\n", est.HT, est.L, est.Counts)
	default:
		return fmt.Errorf("unknown query %q", query)
	}
	return nil
}

func runDemo(query string, cfg engine.Config) error {
	dir, err := os.MkdirTemp("", "estimate-demo-")
	if err != nil {
		return err
	}
	m := simdata.Generate(simdata.ScaledTraffic(20))
	s := core.NewSummarizer(2011)
	var paths [2]string
	switch query {
	case "maxdominance":
		for i := 0; i < 2; i++ {
			sum := s.SummarizePPSExpectedSizeWith(cfg, i, m.Instances[i], 200)
			data, err := json.MarshalIndent(sum, "", " ")
			if err != nil {
				return err
			}
			paths[i] = filepath.Join(dir, fmt.Sprintf("hour%d.json", i+1))
			if err := os.WriteFile(paths[i], data, 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %s, %s\n", paths[0], paths[1])
		fmt.Printf("truth: %.6g\n", m.SumAggregate(dataset.Max, nil))
	case "distinct":
		for i := 0; i < 2; i++ {
			members := make(map[dataset.Key]bool, len(m.Instances[i]))
			for h := range m.Instances[i] {
				members[h] = true
			}
			sum := s.SummarizeSet(i, members, 0.2)
			data, err := json.MarshalIndent(sum, "", " ")
			if err != nil {
				return err
			}
			paths[i] = filepath.Join(dir, fmt.Sprintf("hour%d.json", i+1))
			if err := os.WriteFile(paths[i], data, 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %s, %s\n", paths[0], paths[1])
		fmt.Printf("truth: %d\n", len(m.Keys()))
	default:
		return fmt.Errorf("unknown query %q", query)
	}
	return run(query, paths[0], paths[1])
}
