// Command estimate combines serialized summaries into multi-instance
// estimates — the "post hoc" workflow: instances were summarized
// independently (possibly on different machines), the summaries were
// archived as JSON, and queries arrive later.
//
// Usage:
//
//	estimate -query maxdominance a.json b.json
//	estimate -query distinct     a.json b.json
//	estimate -demo                      # generate, serialize, and query a demo pair
//	estimate -demo -shards 4 -batch 512 # demo summarization through the sharded engine
//
// -shards selects the summarization strategy for the maxdominance -demo's
// PPS summaries: 1 (default) runs the sequential pipeline, n>1 uses n
// hash-partitioned shards. -batch sizes the per-shard arrival batches.
// Both must be positive: a zero or negative count is rejected with a
// non-zero exit instead of silently degrading to another strategy. The
// summary is identical for every setting; only throughput changes. The
// distinct demo's set summaries do not route through the engine (set
// sampling is stateless), so non-default flags are rejected there rather
// than silently ignored.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/simdata"
)

func main() {
	query := flag.String("query", "maxdominance", "query to run: maxdominance or distinct")
	demo := flag.Bool("demo", false, "write a demo summary pair to the working directory and query it")
	shards := flag.Int("shards", 1, "summarization shards for -demo: 1 sequential, n>1 hash-partitioned")
	batch := flag.Int("batch", engine.DefaultBatchSize, "per-shard batch size for -demo")
	flag.Parse()

	if *shards <= 0 {
		fmt.Fprintf(os.Stderr, "estimate: -shards must be positive, got %d (e.g. -shards 4)\n", *shards)
		os.Exit(2)
	}
	if *batch <= 0 {
		fmt.Fprintf(os.Stderr, "estimate: -batch must be positive, got %d (e.g. -batch 1024)\n", *batch)
		os.Exit(2)
	}
	if (*shards != 1 || *batch != engine.DefaultBatchSize) && (!*demo || *query != "maxdominance") {
		fmt.Fprintln(os.Stderr, "estimate: -shards/-batch only apply to the maxdominance demo's PPS summarization")
		os.Exit(2)
	}
	if *demo {
		cfg := engine.Config{Parallel: *shards != 1, Shards: *shards, BatchSize: *batch}
		if err := runDemo(*query, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "need exactly two summary files (or -demo)")
		os.Exit(2)
	}
	if err := run(*query, flag.Arg(0), flag.Arg(1)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(query, file1, file2 string) error {
	d1, err := os.ReadFile(file1)
	if err != nil {
		return err
	}
	d2, err := os.ReadFile(file2)
	if err != nil {
		return err
	}
	switch query {
	case "maxdominance":
		s1, err := core.DecodePPSSummary(d1)
		if err != nil {
			return err
		}
		s2, err := core.DecodePPSSummary(d2)
		if err != nil {
			return err
		}
		est, err := core.MaxDominance(s1, s2, nil)
		if err != nil {
			return err
		}
		fmt.Printf("max-dominance over %d keys:\n  HT = %.6g\n  L  = %.6g\n", est.KeysUsed, est.HT, est.L)
	case "distinct":
		s1, err := core.DecodeSetSummary(d1)
		if err != nil {
			return err
		}
		s2, err := core.DecodeSetSummary(d2)
		if err != nil {
			return err
		}
		est, err := core.DistinctCount(s1, s2, nil)
		if err != nil {
			return err
		}
		fmt.Printf("distinct count:\n  HT = %.6g\n  L  = %.6g\n  categories: %+v\n", est.HT, est.L, est.Counts)
	default:
		return fmt.Errorf("unknown query %q", query)
	}
	return nil
}

func runDemo(query string, cfg engine.Config) error {
	dir, err := os.MkdirTemp("", "estimate-demo-")
	if err != nil {
		return err
	}
	m := simdata.Generate(simdata.ScaledTraffic(20))
	s := core.NewSummarizer(2011)
	var paths [2]string
	switch query {
	case "maxdominance":
		for i := 0; i < 2; i++ {
			sum := s.SummarizePPSExpectedSizeWith(cfg, i, m.Instances[i], 200)
			data, err := json.MarshalIndent(sum, "", " ")
			if err != nil {
				return err
			}
			paths[i] = filepath.Join(dir, fmt.Sprintf("hour%d.json", i+1))
			if err := os.WriteFile(paths[i], data, 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %s, %s\n", paths[0], paths[1])
		fmt.Printf("truth: %.6g\n", m.SumAggregate(dataset.Max, nil))
	case "distinct":
		for i := 0; i < 2; i++ {
			members := make(map[dataset.Key]bool, len(m.Instances[i]))
			for h := range m.Instances[i] {
				members[h] = true
			}
			sum := s.SummarizeSet(i, members, 0.2)
			data, err := json.MarshalIndent(sum, "", " ")
			if err != nil {
				return err
			}
			paths[i] = filepath.Join(dir, fmt.Sprintf("hour%d.json", i+1))
			if err := os.WriteFile(paths[i], data, 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %s, %s\n", paths[0], paths[1])
		fmt.Printf("truth: %d\n", len(m.Keys()))
	default:
		return fmt.Errorf("unknown query %q", query)
	}
	return run(query, paths[0], paths[1])
}
