// Command figures regenerates the paper's figures and tables as aligned
// text series.
//
// Usage:
//
//	figures            # all figures
//	figures -fig 4     # only Figure 4
//	figures -fig 7 -scale 10 -n 32   # Figure 7 on a 10× smaller workload
//
// Figure ids: 1, 2, 3, 4, 5, 6, 7, 6.1 (the Theorem 6.1 report), ablation.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1..7, 6.1, ablation, multiperiod, or all")
	scale := flag.Int("scale", 1, "figure 7 workload scale-down factor")
	n := flag.Int("n", 64, "figure 7 per-key integration intervals")
	flag.Parse()

	var tables []*experiments.Table
	switch *fig {
	case "all":
		tables = experiments.All()
	case "1":
		tables = experiments.Figure1()
	case "2":
		tables = []*experiments.Table{experiments.Figure2()}
	case "3":
		tables = []*experiments.Table{experiments.Figure3()}
	case "4":
		tables = experiments.Figure4()
	case "5":
		tables = experiments.Figure5()
	case "6":
		tables = experiments.Figure6()
	case "7":
		tables = []*experiments.Table{experiments.Figure7(experiments.Figure7Options{
			ScaleDown:    *scale,
			IntegrationN: *n,
		})}
	case "6.1":
		tables = []*experiments.Table{experiments.Theorem61()}
	case "ablation":
		tables = experiments.Ablation()
	case "multiperiod":
		tables = []*experiments.Table{experiments.MultiPeriod()}
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
	for _, t := range tables {
		t.Fprint(os.Stdout)
	}
}
