package main

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/testutil"
)

// TestGracefulShutdownSequence exercises the exact shutdown path main
// runs on SIGTERM — drain the HTTP server, park the registry in a final
// snapshot, close the store — against a live, store-backed stack, and
// verifies that no goroutine survives it: not the HTTP accept loop, not
// a per-request handler, not the store's background snapshot worker.
func TestGracefulShutdownSequence(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()

	metricsReg := obs.NewRegistry()
	reg := server.NewRegistry()
	st, err := store.Open(dir, store.Options{SnapshotEvery: 4, Metrics: metricsReg}, reg.Put)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	reg.SetPersister(st)
	reg.MarkClean(st.WALDatasets())

	srv := &http.Server{Handler: server.New(reg, engine.Config{},
		server.WithObserver(server.NewObserver(metricsReg)),
		server.WithMetricsEndpoint(),
		server.WithStoreStatus(st.Status),
	)}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	// Live traffic before shutdown: ingest through the registry (the
	// store appends and schedules background snapshots) and probe the
	// read endpoints over real TCP so per-connection goroutines exist.
	for i := 0; i < 10; i++ {
		s := core.NewSummarizer(7).SummarizePPS(i, dataset.Instance{1: 2, 3: 4}, 0.5)
		if err := reg.Put("shutdown-test", s); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	base := "http://" + ln.Addr().String()
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	http.DefaultClient.CloseIdleConnections()

	// The shutdown sequence, in main's order: requests first, then the
	// final snapshot (Registry.Snapshot, keeping the registry→store lock
	// order), then the WAL flush in Close.
	shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := reg.Snapshot(); err != nil {
		t.Fatalf("final snapshot: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close store: %v", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}

	// The final snapshot superseded the WAL; a reopen must recover
	// everything from the snapshot alone.
	reg2 := server.NewRegistry()
	st2, err := store.Open(dir, store.Options{}, reg2.Put)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	status := st2.Status()
	if status.RecoveredSummaries != 10 || status.WALRecords != 0 {
		t.Fatalf("recovery after graceful shutdown: %+v", status)
	}
	if _, err := reg2.Info("shutdown-test"); err != nil {
		t.Fatalf("recovered dataset missing: %v", err)
	}
}
