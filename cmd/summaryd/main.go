// Command summaryd runs the summary server: an HTTP service that accepts
// posted summaries (the core JSON wire format) or raw CSV/ndjson pair
// streams (summarized on arrival through the sharded engine pipeline,
// one instance per request via /v1/ingest or every instance of a dataset
// in one scan via /v1/ingest/multi) and answers distinct / max-dominance /
// quantile / sum queries over any stored subset — the paper's
// dispersed-data workflow as a service.
//
// Usage:
//
//	summaryd                        # listen on :8080, sequential ingest
//	summaryd -addr :9090            # custom listen address
//	summaryd -shards 4 -batch 512   # sharded parallel ingest summarization
//	summaryd -shards 4 -async -queue 16   # async ingest: bounded queues
//	summaryd -wire 2                # binary default for summary fetch-backs
//
// -shards selects the ingest summarization strategy: 1 (the default) runs
// the sequential pipeline, n>1 fans out across n hash-partitioned
// workers, 0 uses one worker per CPU. -batch sizes the per-shard arrival
// batches. -async decouples the request reader from the samplers: pairs
// are handed to worker goroutines through bounded per-shard queues of
// -queue batches, and a push stalls only while its destination queue is
// full (at most one batch drain). Negative values are rejected with exit
// 2 (engine.Config.Validate; 0 always means "use the default"). The
// stored summary is identical for every setting — only ingest throughput
// changes.
//
// -wire selects the wire format of GET /v1/summaries responses when the
// client's Accept header names none: 1 (the default) answers JSON, 2 the
// binary v2 format. Posts always accept every registered format by
// Content-Type regardless of this flag, and an explicit Accept always
// wins — the flag only moves the no-preference default. Unregistered
// versions are rejected with exit 2.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 1, "ingest summarization shards: 1 sequential, n>1 hash-partitioned workers, 0 per-CPU")
	batch := flag.Int("batch", engine.DefaultBatchSize, "per-shard batch size for sharded ingest")
	async := flag.Bool("async", false, "decouple ingest from sampling: bounded per-shard queues, stalls counted")
	queue := flag.Int("queue", 0, "per-shard queue depth in batches (0 = default 8)")
	wire := flag.Int("wire", 1, "default wire version for summary fetch-backs without an Accept preference (1 = JSON, 2 = binary)")
	flag.Parse()

	if _, err := core.CodecByVersion(*wire); err != nil {
		fmt.Fprintf(os.Stderr, "summaryd: -wire %d: %v\n", *wire, err)
		os.Exit(2)
	}

	cfg := engine.Config{
		Parallel:   *shards != 1,
		Shards:     *shards,
		BatchSize:  *batch,
		Async:      *async,
		QueueDepth: *queue,
	}
	// One validation rule for every front door: the engine owns it.
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "summaryd: %v\n", err)
		os.Exit(2)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: server.New(server.NewRegistry(), cfg, server.WithDefaultWire(*wire)),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("summaryd: listening on %s (shards=%d, batch=%d, async=%v, queue=%d, wire=%d of %v)",
		*addr, cfg.NumShards(), cfg.EffectiveBatchSize(), cfg.Async, cfg.EffectiveQueueDepth(),
		*wire, core.SupportedWireVersions())

	select {
	case err := <-errc:
		log.Fatalf("summaryd: %v", err)
	case <-ctx.Done():
		log.Printf("summaryd: shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("summaryd: shutdown: %v", err)
		}
	}
}
