// Command summaryd runs the summary server: an HTTP service that accepts
// posted summaries (the core JSON wire format) or raw CSV/ndjson pair
// streams (summarized on arrival through the sharded engine pipeline,
// one instance per request via /v1/ingest or every instance of a dataset
// in one scan via /v1/ingest/multi) and answers distinct / max-dominance /
// quantile / sum queries over any stored subset — the paper's
// dispersed-data workflow as a service.
//
// Usage:
//
//	summaryd                        # listen on :8080, sequential ingest
//	summaryd -addr :9090            # custom listen address
//	summaryd -shards 4 -batch 512   # sharded parallel ingest summarization
//	summaryd -shards 4 -async -queue 16   # async ingest: bounded queues
//	summaryd -wire 2                # binary default for summary fetch-backs
//	summaryd -data-dir /var/lib/summaryd  # durable registry (WAL + snapshots)
//	summaryd -data-dir d -fsync -snapshot-every 1000  # power-loss durable
//	summaryd -log-format json -log-level debug  # structured ops logging
//	summaryd -pprof-addr 127.0.0.1:6060         # profiling side listener
//	summaryd -trace-ring 512                    # keep more traces in memory
//	summaryd -trace=false                       # disable request tracing
//
// -shards selects the ingest summarization strategy: 1 (the default) runs
// the sequential pipeline, n>1 fans out across n hash-partitioned
// workers, 0 uses one worker per CPU. -batch sizes the per-shard arrival
// batches. -async decouples the request reader from the samplers: pairs
// are handed to worker goroutines through bounded per-shard queues of
// -queue batches, and a push stalls only while its destination queue is
// full (at most one batch drain). Negative values are rejected with exit
// 2 (engine.Config.Validate; 0 always means "use the default"). The
// stored summary is identical for every setting — only ingest throughput
// changes.
//
// -wire selects the wire format of GET /v1/summaries responses when the
// client's Accept header names none: 1 (the default) answers JSON, 2 the
// binary v2 format. Posts always accept every registered format by
// Content-Type regardless of this flag, and an explicit Accept always
// wins — the flag only moves the no-preference default. Unregistered
// versions are rejected with exit 2.
//
// -data-dir makes the registry durable: every accepted summary and
// ingest result is appended to a write-ahead log in that directory
// before the request is acknowledged. The log rotates into bounded
// segment files (-wal-segment-bytes caps each one), and every
// -snapshot-every records an incremental snapshot — only the datasets
// dirty since the previous one — is written by a background worker while
// requests keep flowing; the covered segments are then deleted. A
// restart replays snapshot chain + live segments so stored summaries
// survive crashes — /healthz then reports the store's state under
// "store". -fsync additionally syncs the WAL on every append (durable
// against power loss, at a per-request fsync cost; without it a kill
// loses at most the page cache's tail, never consistency). Without
// -data-dir the registry is purely in-memory, as before. On
// SIGINT/SIGTERM the server drains in-flight requests
// (http.Server.Shutdown), takes a final snapshot (even when automatic
// snapshots are disabled with a negative -snapshot-every, so the next
// boot does not replay the whole log), and fsyncs the store before
// exiting.
//
// Observability: every request carries an X-Request-ID (inbound IDs from
// a fronting proxy are honored) and emits one structured log line keyed
// by it; requests at or above -slow-request log at warn with slow=true.
// -metrics (on by default) serves the Prometheus text exposition on
// GET /metrics of the main listener — HTTP, ingest-engine, and (with
// -data-dir) durability series, all prefixed summaryd_. -pprof-addr
// starts a SEPARATE listener serving net/http/pprof under /debug/pprof/
// — keep it on a loopback or operator-only address; profiles are not for
// the data plane. -log-format selects human text (default) or one JSON
// object per line; -log-level sets the floor (debug silences nothing,
// warn keeps only slow requests and problems).
//
// -trace (on by default) records one span tree per request — handler,
// engine drain, WAL append/fsync/rotation, background snapshots — into a
// bounded in-memory ring of -trace-ring completed traces, served as JSON
// on GET /debug/traces of the main listener. Inbound W3C traceparent
// headers are honored (the request joins the caller's trace) and a
// traceparent response header is emitted next to X-Request-ID; slow / 5xx
// request log lines carry the trace_id so the matching trace is one
// /debug/traces lookup away. -trace=false removes the recording fast
// path entirely.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/server"
	"repro/internal/store"
)

// buildLogger resolves -log-format/-log-level into the process logger.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (debug, info, warn, error)", level)
	}
	hopts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, hopts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, hopts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (text, json)", format)
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 1, "ingest summarization shards: 1 sequential, n>1 hash-partitioned workers, 0 per-CPU")
	batch := flag.Int("batch", engine.DefaultBatchSize, "per-shard batch size for sharded ingest")
	async := flag.Bool("async", false, "decouple ingest from sampling: bounded per-shard queues, stalls counted")
	queue := flag.Int("queue", 0, "per-shard queue depth in batches (0 = default 8)")
	wire := flag.Int("wire", 1, "default wire version for summary fetch-backs without an Accept preference (1 = JSON, 2 = binary)")
	dataDir := flag.String("data-dir", "", "durability directory (WAL + snapshots); empty keeps the registry in-memory")
	snapshotEvery := flag.Int64("snapshot-every", store.DefaultSnapshotEvery, "WAL records between automatic snapshots (negative disables automatic snapshots; a final one is still taken at shutdown); snapshots are incremental and written in the background, so posts and queries keep flowing while one runs")
	segmentBytes := flag.Int64("wal-segment-bytes", store.DefaultSegmentBytes, "size cap of one WAL segment file; the log rotates into a fresh segment past it")
	fsync := flag.Bool("fsync", false, "fsync the WAL after every accepted summary (durable against power loss)")
	metrics := flag.Bool("metrics", true, "serve the Prometheus text exposition on GET /metrics")
	pprofAddr := flag.String("pprof-addr", "", "listen address for net/http/pprof (e.g. 127.0.0.1:6060); empty disables profiling")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	slowReq := flag.Duration("slow-request", time.Second, "log requests at or above this duration at warn with slow=true (0 disables)")
	traceOn := flag.Bool("trace", true, "record request traces (W3C traceparent honored and emitted) and serve them on GET /debug/traces")
	traceRing := flag.Int("trace-ring", trace.DefaultRing, "completed traces kept in the in-memory ring served by /debug/traces")
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "summaryd: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	if _, err := core.CodecByVersion(*wire); err != nil {
		fmt.Fprintf(os.Stderr, "summaryd: -wire %d: %v\n", *wire, err)
		os.Exit(2)
	}

	cfg := engine.Config{
		Parallel:   *shards != 1,
		Shards:     *shards,
		BatchSize:  *batch,
		Async:      *async,
		QueueDepth: *queue,
	}
	// One validation rule for every front door: the engine owns it.
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "summaryd: %v\n", err)
		os.Exit(2)
	}

	// One registry feeds every layer's series; the observer instruments
	// the request path and the server's engine totals, the store adds its
	// durability series at Open. Requests are always measured and logged —
	// -metrics only gates whether /metrics exposes the numbers.
	metricsReg := obs.NewRegistry()
	observer := server.NewObserver(metricsReg,
		server.WithRequestLogger(logger),
		server.WithSlowRequest(*slowReq),
	)

	reg := server.NewRegistry()
	opts := []server.Option{
		server.WithDefaultWire(*wire),
		server.WithObserver(observer),
	}
	if *metrics {
		opts = append(opts, server.WithMetricsEndpoint())
	}
	var tracer *trace.Tracer
	if *traceOn {
		tracer = trace.New(*traceRing)
		opts = append(opts, server.WithTracer(tracer))
	}
	var st *store.Store
	if *dataDir != "" {
		openStart := time.Now()
		var err error
		st, err = store.Open(*dataDir, store.Options{
			SnapshotEvery: *snapshotEvery,
			SegmentBytes:  *segmentBytes,
			Fsync:         *fsync,
			Metrics:       metricsReg,
			Tracer:        tracer,
			Logger:        logger,
		}, reg.Put)
		if err != nil {
			logger.Error("opening store failed", "dir", *dataDir, "error", err)
			os.Exit(1)
		}
		// Attach only after Open has replayed: replay goes through reg.Put
		// too, and must not re-append what the log already holds. Replay
		// also marked every recovered dataset dirty; only the ones with
		// live WAL records actually need the next incremental snapshot.
		reg.SetPersister(st)
		reg.MarkClean(st.WALDatasets())
		opts = append(opts, server.WithStoreStatus(st.Status))
		status := st.Status()
		logger.Info("store recovered",
			"dir", *dataDir,
			"summaries", status.RecoveredSummaries,
			"datasets", status.RecoveredDatasets,
			"snapshot_entries", status.SnapshotEntries,
			"wal_records", status.WALRecords,
			"wal_segments", status.WALSegments,
			"quarantined", status.QuarantinedFiles,
			"fsync", *fsync,
			"duration", time.Since(openStart),
		)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: server.New(reg, cfg, opts...),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	// The profiling listener is deliberately separate from the data plane:
	// it binds its own (typically loopback) address, is never instrumented
	// or logged per-request, and dies with the process rather than being
	// drained — profiles in flight at shutdown are not worth waiting for.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv = &http.Server{Addr: *pprofAddr, Handler: mux}
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "addr", *pprofAddr, "error", err)
			}
		}()
		logger.Info("pprof listening", "addr", *pprofAddr)
	}

	logger.Info("listening",
		"addr", *addr,
		"shards", cfg.NumShards(),
		"batch", cfg.EffectiveBatchSize(),
		"async", cfg.Async,
		"queue", cfg.EffectiveQueueDepth(),
		"wire", *wire,
		"wire_versions", core.SupportedWireVersions(),
		"metrics", *metrics,
		"slow_request", *slowReq,
		"trace", *traceOn,
	)

	select {
	case err := <-errc:
		logger.Error("server failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
		logger.Info("shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("shutdown failed", "error", err)
			os.Exit(1)
		}
		if pprofSrv != nil {
			pprofSrv.Close()
		}
		if st != nil {
			// Requests are drained; park the registry in a snapshot so the
			// next boot replays one file instead of the whole log, then
			// flush and fsync the WAL on the way out. Registry.Snapshot
			// (not st.Snapshot) keeps the registry→store lock order.
			if err := reg.Snapshot(); err != nil {
				logger.Warn("final snapshot failed; WAL still holds everything", "error", err)
			}
			if err := st.Close(); err != nil {
				logger.Error("closing store failed", "error", err)
				os.Exit(1)
			}
			logger.Info("store closed")
		}
	}
}
