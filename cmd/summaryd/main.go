// Command summaryd runs the summary server: an HTTP service that accepts
// posted summaries (the core JSON wire format) or raw CSV/ndjson pair
// streams (summarized on arrival through the sharded engine pipeline) and
// answers distinct / max-dominance / quantile / sum queries over any
// stored subset — the paper's dispersed-data workflow as a service.
//
// Usage:
//
//	summaryd                        # listen on :8080, sequential ingest
//	summaryd -addr :9090            # custom listen address
//	summaryd -shards 4 -batch 512   # sharded parallel ingest summarization
//
// -shards selects the ingest summarization strategy: 1 (default) runs the
// sequential pipeline, n>1 fans out across n hash-partitioned workers.
// -batch sizes the per-shard arrival batches. Both must be positive; the
// stored summary is identical for every setting — only ingest throughput
// changes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 1, "ingest summarization shards: 1 sequential, n>1 hash-partitioned workers")
	batch := flag.Int("batch", engine.DefaultBatchSize, "per-shard batch size for sharded ingest")
	flag.Parse()

	if *shards <= 0 {
		fmt.Fprintf(os.Stderr, "summaryd: -shards must be positive, got %d (e.g. -shards 4)\n", *shards)
		os.Exit(2)
	}
	if *batch <= 0 {
		fmt.Fprintf(os.Stderr, "summaryd: -batch must be positive, got %d (e.g. -batch 1024)\n", *batch)
		os.Exit(2)
	}

	cfg := engine.Config{Parallel: *shards > 1, Shards: *shards, BatchSize: *batch}
	srv := &http.Server{
		Addr:    *addr,
		Handler: server.New(server.NewRegistry(), cfg),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("summaryd: listening on %s (shards=%d, batch=%d)", *addr, *shards, *batch)

	select {
	case err := <-errc:
		log.Fatalf("summaryd: %v", err)
	case <-ctx.Done():
		log.Printf("summaryd: shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("summaryd: shutdown: %v", err)
		}
	}
}
