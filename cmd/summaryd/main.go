// Command summaryd runs the summary server: an HTTP service that accepts
// posted summaries (the core JSON wire format) or raw CSV/ndjson pair
// streams (summarized on arrival through the sharded engine pipeline,
// one instance per request via /v1/ingest or every instance of a dataset
// in one scan via /v1/ingest/multi) and answers distinct / max-dominance /
// quantile / sum queries over any stored subset — the paper's
// dispersed-data workflow as a service.
//
// Usage:
//
//	summaryd                        # listen on :8080, sequential ingest
//	summaryd -addr :9090            # custom listen address
//	summaryd -shards 4 -batch 512   # sharded parallel ingest summarization
//	summaryd -shards 4 -async -queue 16   # async ingest: bounded queues
//	summaryd -wire 2                # binary default for summary fetch-backs
//	summaryd -data-dir /var/lib/summaryd  # durable registry (WAL + snapshots)
//	summaryd -data-dir d -fsync -snapshot-every 1000  # power-loss durable
//
// -shards selects the ingest summarization strategy: 1 (the default) runs
// the sequential pipeline, n>1 fans out across n hash-partitioned
// workers, 0 uses one worker per CPU. -batch sizes the per-shard arrival
// batches. -async decouples the request reader from the samplers: pairs
// are handed to worker goroutines through bounded per-shard queues of
// -queue batches, and a push stalls only while its destination queue is
// full (at most one batch drain). Negative values are rejected with exit
// 2 (engine.Config.Validate; 0 always means "use the default"). The
// stored summary is identical for every setting — only ingest throughput
// changes.
//
// -wire selects the wire format of GET /v1/summaries responses when the
// client's Accept header names none: 1 (the default) answers JSON, 2 the
// binary v2 format. Posts always accept every registered format by
// Content-Type regardless of this flag, and an explicit Accept always
// wins — the flag only moves the no-preference default. Unregistered
// versions are rejected with exit 2.
//
// -data-dir makes the registry durable: every accepted summary and
// ingest result is appended to a write-ahead log in that directory
// before the request is acknowledged. The log rotates into bounded
// segment files (-wal-segment-bytes caps each one), and every
// -snapshot-every records an incremental snapshot — only the datasets
// dirty since the previous one — is written by a background worker while
// requests keep flowing; the covered segments are then deleted. A
// restart replays snapshot chain + live segments so stored summaries
// survive crashes — /healthz then reports the store's state under
// "store". -fsync additionally syncs the WAL on every append (durable
// against power loss, at a per-request fsync cost; without it a kill
// loses at most the page cache's tail, never consistency). Without
// -data-dir the registry is purely in-memory, as before. On
// SIGINT/SIGTERM the server drains in-flight requests
// (http.Server.Shutdown), takes a final snapshot (even when automatic
// snapshots are disabled with a negative -snapshot-every, so the next
// boot does not replay the whole log), and fsyncs the store before
// exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 1, "ingest summarization shards: 1 sequential, n>1 hash-partitioned workers, 0 per-CPU")
	batch := flag.Int("batch", engine.DefaultBatchSize, "per-shard batch size for sharded ingest")
	async := flag.Bool("async", false, "decouple ingest from sampling: bounded per-shard queues, stalls counted")
	queue := flag.Int("queue", 0, "per-shard queue depth in batches (0 = default 8)")
	wire := flag.Int("wire", 1, "default wire version for summary fetch-backs without an Accept preference (1 = JSON, 2 = binary)")
	dataDir := flag.String("data-dir", "", "durability directory (WAL + snapshots); empty keeps the registry in-memory")
	snapshotEvery := flag.Int64("snapshot-every", store.DefaultSnapshotEvery, "WAL records between automatic snapshots (negative disables automatic snapshots; a final one is still taken at shutdown); snapshots are incremental and written in the background, so posts and queries keep flowing while one runs")
	segmentBytes := flag.Int64("wal-segment-bytes", store.DefaultSegmentBytes, "size cap of one WAL segment file; the log rotates into a fresh segment past it")
	fsync := flag.Bool("fsync", false, "fsync the WAL after every accepted summary (durable against power loss)")
	flag.Parse()

	if _, err := core.CodecByVersion(*wire); err != nil {
		fmt.Fprintf(os.Stderr, "summaryd: -wire %d: %v\n", *wire, err)
		os.Exit(2)
	}

	cfg := engine.Config{
		Parallel:   *shards != 1,
		Shards:     *shards,
		BatchSize:  *batch,
		Async:      *async,
		QueueDepth: *queue,
	}
	// One validation rule for every front door: the engine owns it.
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "summaryd: %v\n", err)
		os.Exit(2)
	}

	reg := server.NewRegistry()
	opts := []server.Option{server.WithDefaultWire(*wire)}
	var st *store.Store
	if *dataDir != "" {
		var err error
		st, err = store.Open(*dataDir, store.Options{SnapshotEvery: *snapshotEvery, SegmentBytes: *segmentBytes, Fsync: *fsync}, reg.Put)
		if err != nil {
			log.Fatalf("summaryd: opening store: %v", err)
		}
		// Attach only after Open has replayed: replay goes through reg.Put
		// too, and must not re-append what the log already holds. Replay
		// also marked every recovered dataset dirty; only the ones with
		// live WAL records actually need the next incremental snapshot.
		reg.SetPersister(st)
		reg.MarkClean(st.WALDatasets())
		opts = append(opts, server.WithStoreStatus(st.Status))
		status := st.Status()
		log.Printf("summaryd: recovered %d summaries in %d datasets from %s (snapshot entries=%d, wal records=%d in %d segments, fsync=%v)",
			status.RecoveredSummaries, status.RecoveredDatasets, *dataDir,
			status.SnapshotEntries, status.WALRecords, status.WALSegments, *fsync)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: server.New(reg, cfg, opts...),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("summaryd: listening on %s (shards=%d, batch=%d, async=%v, queue=%d, wire=%d of %v)",
		*addr, cfg.NumShards(), cfg.EffectiveBatchSize(), cfg.Async, cfg.EffectiveQueueDepth(),
		*wire, core.SupportedWireVersions())

	select {
	case err := <-errc:
		log.Fatalf("summaryd: %v", err)
	case <-ctx.Done():
		log.Printf("summaryd: shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("summaryd: shutdown: %v", err)
		}
		if st != nil {
			// Requests are drained; park the registry in a snapshot so the
			// next boot replays one file instead of the whole log, then
			// flush and fsync the WAL on the way out. Registry.Snapshot
			// (not st.Snapshot) keeps the registry→store lock order.
			if err := reg.Snapshot(); err != nil {
				log.Printf("summaryd: final snapshot: %v (WAL still holds everything)", err)
			}
			if err := st.Close(); err != nil {
				log.Fatalf("summaryd: closing store: %v", err)
			}
		}
	}
}
