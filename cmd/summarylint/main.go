// Command summarylint runs the repo's domain-specific static-analysis
// suite (internal/lint) over the packages matched by its arguments:
//
//	go run ./cmd/summarylint ./...
//	go run ./cmd/summarylint -json ./... > lint.json
//
// The suite enforces the invariants the reproduction's guarantees rest
// on: deterministic map iteration in encode/query code (maporder),
// ordered float accumulation (floatsum), registry-before-store lock
// ranking (lockorder), allocation-free `//summarylint:hot` functions
// (hotalloc), and nil-receiver guards on obs instruments (nilguard).
// See the README's "Static analysis" section for the analyzer table and
// annotation conventions.
//
// Diagnostics only — there is no -fix. Suppress a finding with
// `//summarylint:ignore <reason>` on the flagged line or the line above;
// the reason is mandatory.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

// report is the machine-readable -json output, one object per run.
type report struct {
	Analyzers   []analyzerInfo    `json:"analyzers"`
	Diagnostics []lint.Diagnostic `json:"diagnostics"`
	Count       int               `json:"count"`
}

type analyzerInfo struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report on stdout")
	dir := flag.String("C", ".", "module directory to analyze")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: summarylint [-json] [-C dir] <packages>\n  e.g.: go run ./cmd/summarylint ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	prog, err := lint.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "summarylint: %v\n", err)
		os.Exit(2)
	}
	analyzers := lint.DefaultAnalyzers()
	diags := lint.Run(prog, analyzers)

	if *jsonOut {
		rep := report{Diagnostics: diags, Count: len(diags)}
		if rep.Diagnostics == nil {
			rep.Diagnostics = []lint.Diagnostic{}
		}
		for _, a := range analyzers {
			rep.Analyzers = append(rep.Analyzers, analyzerInfo{a.Name(), a.Doc()})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "summarylint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "summarylint: %d finding(s) in %d package(s)\n", len(diags), len(prog.Pkgs))
		os.Exit(1)
	}
}
