// Command sampledemo walks the paper's worked example (Figure 5) end to
// end: the data matrix, shared-seed vs independent PPS rank assignments,
// the resulting bottom-3 samples, and subset-sum estimates from each
// sampling scheme on the example instances.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/randx"
	"repro/internal/sampling"
)

func main() {
	for _, t := range experiments.Figure5() {
		t.Fprint(os.Stdout)
	}

	// Beyond the figure: draw each sampling scheme on instance 1 and show
	// the subset-sum machinery.
	in := dataset.FigureFive().Instances[0]
	total := in.Total()
	fmt.Printf("instance 1 total value: %g\n\n", total)

	s := core.NewSummarizer(42)
	pps := s.SummarizePPSExpectedSize(0, in, 3)
	fmt.Printf("Poisson PPS (expected size 3, tau=%.4g): %d keys, subset-sum estimate %.4g\n",
		pps.Tau, pps.Len(), pps.SubsetSum(nil))

	bk := s.SummarizeBottomK(0, in, 3, sampling.PPS{})
	fmt.Printf("bottom-3 priority sample: %d keys, subset-sum estimate %.4g\n",
		bk.Len(), bk.SubsetSum(nil))

	bkExp := s.SummarizeBottomK(0, in, 3, sampling.EXP{})
	fmt.Printf("bottom-3 SWOR (EXP ranks): %d keys, subset-sum estimate %.4g\n",
		bkExp.Len(), bkExp.SubsetSum(nil))

	vo := sampling.NewVarOpt(3, randx.New(7))
	for h, v := range in {
		vo.Add(h, v)
	}
	vs := vo.Sample()
	fmt.Printf("VarOpt-3 sample (tau=%.4g): %d keys, subset-sum estimate %.4g\n",
		vs.Tau, len(vs.Adjusted), vs.SubsetSum(nil))
}
