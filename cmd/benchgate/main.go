// Command benchgate compares `go test -bench` output against a committed
// baseline and fails the build on performance regressions. It is the
// in-repo stand-in for benchstat in environments where installing tools
// is off the table: plain stdlib, no dependencies.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem -count 3 . > bench.txt
//	benchgate -baseline bench/baselines/hotpath.json bench.txt
//	benchgate -baseline bench/baselines/hotpath.json -update bench.txt
//	benchgate -baseline ... -out BENCH_hotpath.json bench.txt more.txt
//
// Input files (or stdin when none are given) hold the standard text
// output of `go test -bench`. Lines that are not benchmark results are
// ignored, so raw `go test` output can be piped in unfiltered.
//
// The gate has two rules, checked per baseline benchmark:
//
//   - ns/op may not regress by more than -ns-slack (default 0.10, i.e.
//     +10%) against the baseline. With -count > 1 the minimum across
//     repetitions is compared — the minimum is the least noisy estimate
//     of the true cost on a shared machine.
//   - allocs/op may not regress at all. Allocation counts are
//     deterministic, so any increase is a real change, not noise.
//
// A baseline benchmark missing from the input is an error: a gate that
// silently stops running its benchmarks is not a gate. Input benchmarks
// absent from the baseline are reported as "new" and pass; add them with
// -update when they should be gated.
//
// Benchmark names are normalized by stripping the trailing -N GOMAXPROCS
// suffix, so baselines do not depend on the runner's core count.
//
// -out writes a JSON report of every parsed benchmark (ns/op, allocs/op,
// baseline and delta when gated). Reject-path benchmarks — names
// containing "Reject" — are additionally surfaced in a top-level
// reject_ns_per_op map, the hot-path metric the CI artifact exists for.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

func main() {
	baselinePath := flag.String("baseline", "", "baseline JSON file (required)")
	update := flag.Bool("update", false, "rewrite the baseline from the input instead of gating")
	out := flag.String("out", "", "write a JSON report of all parsed benchmarks to this file")
	nsSlack := flag.Float64("ns-slack", 0.10, "allowed fractional ns/op regression (0.10 = +10%)")
	flag.Parse()

	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline is required")
		os.Exit(2)
	}
	results, err := readResults(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results in input")
		os.Exit(2)
	}

	if *update {
		if err := writeBaseline(*baselinePath, results); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(results), *baselinePath)
		return
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	report := gate(base, results, *nsSlack)
	for _, line := range report.Lines() {
		fmt.Println(line)
	}
	if *out != "" {
		if err := report.write(*out); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
	}
	if len(report.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d regression(s)\n", len(report.Failures))
		os.Exit(1)
	}
}

func readResults(paths []string) (map[string]Result, error) {
	if len(paths) == 0 {
		return ParseBench(os.Stdin)
	}
	merged := make(map[string]Result)
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		rs, err := ParseBench(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		for name, r := range rs {
			merged[name] = mergeResult(merged[name], r)
		}
	}
	return merged, nil
}

func readBaseline(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return Baseline{}, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

func writeBaseline(path string, results map[string]Result) error {
	b := Baseline{
		Note:       "Committed perf baseline for cmd/benchgate. Regenerate with: benchgate -baseline <this file> -update <bench output>.",
		Benchmarks: make(map[string]BaselineEntry, len(results)),
	}
	for name, r := range results {
		b.Benchmarks[name] = BaselineEntry{NsPerOp: r.NsPerOp, AllocsPerOp: r.AllocsPerOp}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Baseline is the committed reference the gate compares against.
type Baseline struct {
	Note       string                   `json:"note,omitempty"`
	Benchmarks map[string]BaselineEntry `json:"benchmarks"`
}

// BaselineEntry pins one benchmark's reference cost.
type BaselineEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// ReportEntry is one benchmark's outcome in the -out JSON report.
type ReportEntry struct {
	Name        string   `json:"name"`
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp int64    `json:"allocs_per_op"`
	BaselineNs  *float64 `json:"baseline_ns_per_op,omitempty"`
	DeltaNsPct  *float64 `json:"delta_ns_pct,omitempty"`
	Status      string   `json:"status"` // "ok", "regressed", "new", "missing"
}

// Report aggregates the gate's verdicts, with reject-path ns/op pulled
// out as the first-class hot-path metric.
type Report struct {
	NsSlackPct    float64            `json:"ns_slack_pct"`
	RejectNsPerOp map[string]float64 `json:"reject_ns_per_op,omitempty"`
	Benchmarks    []ReportEntry      `json:"benchmarks"`
	Failures      []string           `json:"failures,omitempty"`
}

func gate(base Baseline, results map[string]Result, nsSlack float64) *Report {
	rep := &Report{NsSlackPct: nsSlack * 100, RejectNsPerOp: make(map[string]float64)}
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := results[name]
		e := ReportEntry{Name: name, NsPerOp: r.NsPerOp, AllocsPerOp: r.AllocsPerOp, Status: "new"}
		if isRejectPath(name) {
			rep.RejectNsPerOp[name] = r.NsPerOp
		}
		if b, ok := base.Benchmarks[name]; ok {
			e.Status = "ok"
			bns := b.NsPerOp
			e.BaselineNs = &bns
			if bns > 0 {
				pct := (r.NsPerOp/bns - 1) * 100
				e.DeltaNsPct = &pct
			}
			if bns > 0 && r.NsPerOp > bns*(1+nsSlack) {
				e.Status = "regressed"
				rep.Failures = append(rep.Failures, fmt.Sprintf(
					"%s: %.4g ns/op is %+.1f%% vs baseline %.4g (limit %+.0f%%)",
					name, r.NsPerOp, *e.DeltaNsPct, bns, nsSlack*100))
			}
			if r.AllocsPerOp > b.AllocsPerOp {
				e.Status = "regressed"
				rep.Failures = append(rep.Failures, fmt.Sprintf(
					"%s: %d allocs/op vs baseline %d (any allocs/op regression fails)",
					name, r.AllocsPerOp, b.AllocsPerOp))
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	// Baseline benchmarks the input never ran: a silent gate is no gate.
	var missing []string
	for name := range base.Benchmarks {
		if _, ok := results[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		rep.Benchmarks = append(rep.Benchmarks, ReportEntry{Name: name, Status: "missing"})
		rep.Failures = append(rep.Failures, fmt.Sprintf("%s: in baseline but absent from input", name))
	}
	return rep
}

// Lines renders the per-benchmark verdicts for the build log.
func (r *Report) Lines() []string {
	lines := make([]string, 0, len(r.Benchmarks))
	for _, e := range r.Benchmarks {
		switch e.Status {
		case "missing":
			lines = append(lines, fmt.Sprintf("MISS %s (baseline benchmark not run)", e.Name))
		case "new":
			lines = append(lines, fmt.Sprintf("new  %-44s %12.4g ns/op %6d allocs/op (not gated)", e.Name, e.NsPerOp, e.AllocsPerOp))
		default:
			tag := "ok  "
			if e.Status == "regressed" {
				tag = "FAIL"
			}
			lines = append(lines, fmt.Sprintf("%s %-44s %12.4g ns/op %6d allocs/op  %+.1f%% vs baseline", tag, e.Name, e.NsPerOp, e.AllocsPerOp, *e.DeltaNsPct))
		}
	}
	return lines
}

func (r *Report) write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func isRejectPath(name string) bool {
	for i := 0; i+6 <= len(name); i++ {
		if name[i:i+6] == "Reject" {
			return true
		}
	}
	return false
}
