package main

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark's measured cost, minimized over repetitions.
type Result struct {
	Name        string
	NsPerOp     float64
	AllocsPerOp int64
	HasAllocs   bool
	Runs        int
}

// benchLine matches the standard `go test -bench` result line:
//
//	BenchmarkName[/sub...][-N]  iters  123.4 ns/op [ 56 B/op  7 allocs/op  ...]
//
// The trailing -N is the GOMAXPROCS suffix; it is stripped so results
// compare across machines with different core counts.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+(.*)$`)

// ParseBench reads `go test -bench` text output, keeping only benchmark
// result lines. Repetitions of the same benchmark (-count > 1) are
// folded: minimum ns/op (least scheduler noise), maximum allocs/op
// (allocation counts are deterministic, so any disagreement must fail
// against a baseline rather than being averaged away).
func ParseBench(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		res, err := parseMeasurements(m[1], m[4])
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		out[res.Name] = mergeResult(out[res.Name], res)
	}
	return out, sc.Err()
}

// parseMeasurements parses the "value unit" pairs after the iteration
// count. Units other than ns/op and allocs/op (B/op, MB/s, custom
// b.ReportMetric units) are ignored.
func parseMeasurements(name, rest string) (Result, error) {
	fields := strings.Fields(rest)
	if len(fields)%2 != 0 {
		return Result{}, fmt.Errorf("odd measurement fields %q", rest)
	}
	res := Result{Name: name, Runs: 1}
	seenNs := false
	for i := 0; i < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Result{}, fmt.Errorf("ns/op %q: %w", val, err)
			}
			res.NsPerOp = v
			seenNs = true
		case "allocs/op":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Result{}, fmt.Errorf("allocs/op %q: %w", val, err)
			}
			res.AllocsPerOp = v
			res.HasAllocs = true
		}
	}
	if !seenNs {
		return Result{}, fmt.Errorf("no ns/op measurement")
	}
	return res, nil
}

// mergeResult folds a repetition into the accumulated result. The zero
// Result (Runs == 0) acts as the identity.
func mergeResult(acc, r Result) Result {
	if acc.Runs == 0 {
		return r
	}
	acc.Runs += r.Runs
	if r.NsPerOp < acc.NsPerOp {
		acc.NsPerOp = r.NsPerOp
	}
	if r.HasAllocs {
		acc.HasAllocs = true
		if r.AllocsPerOp > acc.AllocsPerOp {
			acc.AllocsPerOp = r.AllocsPerOp
		}
	}
	return acc
}
