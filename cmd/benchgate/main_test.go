package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: some CPU @ 3.00GHz
BenchmarkStreamBottomKReject/pps-8     	165847118	         6.442 ns/op	       0 B/op	       0 allocs/op
BenchmarkStreamBottomKReject/exp-8     	186000000	         6.430 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngineBottomK/shards=1-8      	      37	  31815163 ns/op	 527.31 MB/s
BenchmarkEngineAsync/queue=4-8         	      51	  22904811 ns/op	 732.41 MB/s	         0 stalls/op
BenchmarkEngineAsync/steady-8          	      68	  16862155 ns/op	 994.82 MB/s	       0 B/op	       0 allocs/op
PASS
ok  	repro	12.3s
`

func parseSample(t *testing.T, text string) map[string]Result {
	t.Helper()
	rs, err := ParseBench(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestParseBench(t *testing.T) {
	rs := parseSample(t, sampleOutput)
	if len(rs) != 5 {
		t.Fatalf("parsed %d results, want 5: %+v", len(rs), rs)
	}
	rej, ok := rs["BenchmarkStreamBottomKReject/pps"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if rej.NsPerOp != 6.442 || rej.AllocsPerOp != 0 || !rej.HasAllocs {
		t.Errorf("reject result = %+v", rej)
	}
	eng := rs["BenchmarkEngineBottomK/shards=1"]
	if eng.NsPerOp != 31815163 || eng.HasAllocs {
		t.Errorf("engine result = %+v (MB/s-only line must not fake allocs)", eng)
	}
}

func TestParseBenchFoldsRepetitions(t *testing.T) {
	text := `BenchmarkX-8	100	 50.0 ns/op	 2 allocs/op
BenchmarkX-8	100	 40.0 ns/op	 3 allocs/op
BenchmarkX-8	100	 45.0 ns/op	 2 allocs/op
`
	rs := parseSample(t, text)
	r := rs["BenchmarkX"]
	if r.Runs != 3 || r.NsPerOp != 40.0 || r.AllocsPerOp != 3 {
		t.Errorf("folded result = %+v, want min ns 40, max allocs 3, 3 runs", r)
	}
}

func TestGateVerdicts(t *testing.T) {
	base := Baseline{Benchmarks: map[string]BaselineEntry{
		"BenchmarkFast":    {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkSlow":    {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkAllocs":  {NsPerOp: 100, AllocsPerOp: 1},
		"BenchmarkMissing": {NsPerOp: 100, AllocsPerOp: 0},
	}}
	results := map[string]Result{
		"BenchmarkFast":   {Name: "BenchmarkFast", NsPerOp: 109, Runs: 1, HasAllocs: true},                  // +9% < slack
		"BenchmarkSlow":   {Name: "BenchmarkSlow", NsPerOp: 111, Runs: 1, HasAllocs: true},                  // +11% > slack
		"BenchmarkAllocs": {Name: "BenchmarkAllocs", NsPerOp: 90, AllocsPerOp: 2, Runs: 1, HasAllocs: true}, // faster but allocs up
		"BenchmarkNew":    {Name: "BenchmarkNew", NsPerOp: 5, Runs: 1},
	}
	rep := gate(base, results, 0.10)
	status := make(map[string]string)
	for _, e := range rep.Benchmarks {
		status[e.Name] = e.Status
	}
	want := map[string]string{
		"BenchmarkFast":    "ok",
		"BenchmarkSlow":    "regressed",
		"BenchmarkAllocs":  "regressed",
		"BenchmarkNew":     "new",
		"BenchmarkMissing": "missing",
	}
	for name, w := range want {
		if status[name] != w {
			t.Errorf("%s: status %q, want %q", name, status[name], w)
		}
	}
	// Slow (+11%), Allocs (2 vs 1), Missing (not run) = 3 failures.
	if len(rep.Failures) != 3 {
		t.Errorf("failures = %v, want 3", rep.Failures)
	}
}

func TestReportRejectMetric(t *testing.T) {
	results := parseSample(t, sampleOutput)
	rep := gate(Baseline{Benchmarks: map[string]BaselineEntry{}}, results, 0.10)
	if len(rep.RejectNsPerOp) != 2 {
		t.Fatalf("reject_ns_per_op = %v, want the two reject variants", rep.RejectNsPerOp)
	}
	if rep.RejectNsPerOp["BenchmarkStreamBottomKReject/exp"] != 6.430 {
		t.Errorf("exp reject ns = %v", rep.RejectNsPerOp["BenchmarkStreamBottomKReject/exp"])
	}
}
